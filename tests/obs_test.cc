/**
 * @file
 * Tests for the observability subsystem: the JSON model, the stats
 * registry, the timers, and the run report.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/timer.hh"

namespace {

using namespace ccp;
using obs::Json;
using obs::RunReport;
using obs::ScopedTimer;
using obs::StatsRegistry;
using obs::Stopwatch;

// ---------------------------------------------------------------------
// Json

TEST(Json, ScalarsRoundTrip)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json(std::uint64_t(1) << 60).dump(),
              "1152921504606846976"); // > 2^53: must print exactly
    EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json j = Json::object();
    j["zebra"] = Json(1);
    j["apple"] = Json(2);
    j["mango"] = Json(3);
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(Json, BracketCoercesNullAndFindsMembers)
{
    Json j; // starts Null
    j["a"]["b"] = Json(7);
    ASSERT_TRUE(j.isObject());
    ASSERT_NE(j.find("a"), nullptr);
    EXPECT_EQ(j.find("a")->find("b")->asUInt(), 7u);
    EXPECT_EQ(j.find("missing"), nullptr);
    EXPECT_FALSE(j.contains("missing"));
}

TEST(Json, ParseRoundTripsDump)
{
    Json j = Json::object();
    j["n"] = Json(std::uint64_t(12345678901234567ull));
    j["x"] = Json(0.25);
    j["s"] = Json("quote \" backslash \\ newline \n");
    j["flag"] = Json(true);
    j["nothing"] = Json();
    Json &arr = j["arr"];
    arr = Json::array();
    arr.append(Json(1));
    arr.append(Json("two"));

    for (int indent : {0, 2}) {
        auto parsed = Json::parse(j.dump(indent));
        ASSERT_TRUE(parsed.has_value()) << "indent " << indent;
        EXPECT_EQ(parsed->dump(), j.dump());
    }
}

TEST(Json, ParseRejectsMalformed)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated",
          "{\"a\":1,}", "nul"})
        EXPECT_FALSE(Json::parse(bad).has_value()) << bad;
}

TEST(Json, ParseUnicodeEscape)
{
    auto j = Json::parse("\"a\\u00e9b\"");
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->asString(), "a\xc3\xa9"
                             "b");
}

// ---------------------------------------------------------------------
// StatsRegistry

TEST(Registry, GetOrCreateFixesKind)
{
    StatsRegistry reg;
    ++reg.counter("a.hits");
    reg.counter("a.hits") += 4;
    EXPECT_EQ(reg.counter("a.hits").value, 5u);

    reg.scalar("a.ratio") = 0.5;
    reg.summary("a.time").add(1.0);
    reg.histogram("a.dist", 4).add(2);

    EXPECT_TRUE(reg.has("a.hits"));
    EXPECT_FALSE(reg.has("a.misses"));
    EXPECT_EQ(reg.size(), 4u);

    // find* are kind-checked.
    EXPECT_NE(reg.findCounter("a.hits"), nullptr);
    EXPECT_EQ(reg.findCounter("a.ratio"), nullptr);
    EXPECT_NE(reg.findSummary("a.time"), nullptr);
    EXPECT_EQ(reg.findHistogram("a.time"), nullptr);
}

TEST(Registry, KindMismatchDies)
{
    StatsRegistry reg;
    ++reg.counter("x");
    EXPECT_DEATH(reg.scalar("x"), "accessed as");
}

TEST(Registry, BadPathsDie)
{
    StatsRegistry reg;
    EXPECT_DEATH(reg.counter(""), "path");
    EXPECT_DEATH(reg.counter(".a"), "path");
    EXPECT_DEATH(reg.counter("a."), "path");
    EXPECT_DEATH(reg.counter("a..b"), "path");
    EXPECT_DEATH(reg.counter("A.b"), "path");
    EXPECT_DEATH(reg.counter("a b"), "path");
}

TEST(Registry, LeafGroupConflictDies)
{
    StatsRegistry reg;
    ++reg.counter("a.b");
    EXPECT_DEATH(reg.counter("a.b.c"), "leaf");

    StatsRegistry reg2;
    ++reg2.counter("a.b.c");
    EXPECT_DEATH(reg2.counter("a.b"), "group");
}

TEST(Registry, PathsAreSorted)
{
    StatsRegistry reg;
    ++reg.counter("z.last");
    ++reg.counter("a.first");
    ++reg.counter("m.mid");
    EXPECT_EQ(reg.paths(),
              (std::vector<std::string>{"a.first", "m.mid", "z.last"}));
}

TEST(Registry, MergeCombinesEveryKind)
{
    StatsRegistry a, b;
    a.counter("c") += 2;
    b.counter("c") += 3;
    a.scalar("s") = 1.5;
    b.scalar("s") = 2.0;
    a.summary("t").add(1.0);
    b.summary("t").add(3.0);
    a.histogram("h", 4).add(1);
    b.histogram("h", 4).add(2);
    a.latency("l").add(100);
    b.latency("l").add(1000);
    b.counter("only_b") += 7;

    a.merge(b);
    EXPECT_EQ(a.counter("c").value, 5u);
    EXPECT_DOUBLE_EQ(a.scalar("s"), 3.5);
    EXPECT_EQ(a.summary("t").count(), 2u);
    EXPECT_DOUBLE_EQ(a.summary("t").mean(), 2.0);
    EXPECT_EQ(a.histogram("h", 4).total(), 2u);
    EXPECT_EQ(a.latency("l").count(), 2u);
    EXPECT_EQ(a.latency("l").min(), 100u);
    EXPECT_EQ(a.latency("l").max(), 1000u);
    EXPECT_EQ(a.counter("only_b").value, 7u);
}

TEST(Registry, LatencyMergeAcrossShardsIsExact)
{
    // The sweep discipline: one registry shard per worker thread,
    // merged into a parent at join.  Bucket counts must equal a
    // single-threaded run over the concatenation, whatever the shard
    // count or value distribution.
    constexpr unsigned n_shards = 5;
    std::vector<StatsRegistry> shards(n_shards);
    ccp::LogHistogram expect;
    std::uint64_t v = 1;
    for (unsigned s = 0; s < n_shards; ++s) {
        for (unsigned i = 0; i <= 100 * s; ++i) {
            // Values spanning many log2 buckets, deterministic.
            v = v * 2862933555777941757ull + 3037000493ull;
            std::uint64_t sample = v >> (v % 48);
            shards[s].latency("sweep.batch_latency_ns").add(sample);
            expect.add(sample);
        }
    }

    StatsRegistry parent;
    for (const auto &shard : shards)
        parent.merge(shard);

    const ccp::LogHistogram &merged =
        parent.latency("sweep.batch_latency_ns");
    EXPECT_EQ(merged.count(), expect.count());
    EXPECT_EQ(merged.sum(), expect.sum());
    EXPECT_EQ(merged.min(), expect.min());
    EXPECT_EQ(merged.max(), expect.max());
    for (std::size_t i = 0; i < ccp::LogHistogram::nBuckets; ++i)
        EXPECT_EQ(merged.bucket(i), expect.bucket(i))
            << "bucket " << i;
    EXPECT_DOUBLE_EQ(merged.p50(), expect.p50());
    EXPECT_DOUBLE_EQ(merged.p90(), expect.p90());
    EXPECT_DOUBLE_EQ(merged.p99(), expect.p99());
}

TEST(Registry, LatencyJsonCarriesQuantilesAndSparseBuckets)
{
    StatsRegistry reg;
    reg.latency("io.write_ns").add(1000);
    reg.latency("io.write_ns").add(3000);

    Json j = reg.toJson();
    const Json *io = j.find("io");
    ASSERT_NE(io, nullptr);
    const Json *lat = io->find("write_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asUInt(), 2u);
    EXPECT_EQ(lat->find("min")->asUInt(), 1000u);
    EXPECT_EQ(lat->find("max")->asUInt(), 3000u);
    ASSERT_NE(lat->find("p50"), nullptr);
    ASSERT_NE(lat->find("p90"), nullptr);
    ASSERT_NE(lat->find("p99"), nullptr);
    // Sparse bucket map: only the touched buckets appear, keyed by
    // their lower bound (1000 -> [512,1024), 3000 -> [2048,4096)).
    const Json *buckets = lat->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_NE(buckets->find("512"), nullptr);
    EXPECT_EQ(buckets->find("512")->asUInt(), 1u);
    ASSERT_NE(buckets->find("2048"), nullptr);
    EXPECT_EQ(buckets->find("2048")->asUInt(), 1u);
    EXPECT_EQ(buckets->members().size(), 2u);

    EXPECT_TRUE(Json::parse(j.dump(2)).has_value());
}

TEST(Registry, JsonDumpNestsByDots)
{
    StatsRegistry reg;
    reg.counter("proto.reads") += 10;
    reg.counter("proto.writes") += 4;
    reg.scalar("eval.occupancy") = 0.75;
    reg.summary("eval.seconds").add(2.0);
    reg.summary("eval.seconds").add(4.0);

    Json j = reg.toJson();
    ASSERT_NE(j.find("proto"), nullptr);
    EXPECT_EQ(j.find("proto")->find("reads")->asUInt(), 10u);
    EXPECT_DOUBLE_EQ(j.find("eval")->find("occupancy")->asDouble(),
                     0.75);
    const Json *secs = j.find("eval")->find("seconds");
    ASSERT_NE(secs, nullptr);
    EXPECT_EQ(secs->find("count")->asUInt(), 2u);
    EXPECT_DOUBLE_EQ(secs->find("mean")->asDouble(), 3.0);
    EXPECT_DOUBLE_EQ(secs->find("stddev")->asDouble(), 1.0);

    // The dump must parse back.
    EXPECT_TRUE(Json::parse(j.dump(2)).has_value());
}

TEST(Registry, TextDumpListsEveryPath)
{
    StatsRegistry reg;
    reg.counter("a.n") += 1;
    reg.scalar("b.x") = 2.5;
    std::string text = reg.dumpText();
    EXPECT_NE(text.find("a.n"), std::string::npos);
    EXPECT_NE(text.find("b.x"), std::string::npos);
}

TEST(Registry, RootIsAProcessSingleton)
{
    EXPECT_EQ(&StatsRegistry::root(), &StatsRegistry::root());
}

// ---------------------------------------------------------------------
// Timers

TEST(Timer, StopwatchIsMonotonic)
{
    Stopwatch w;
    double a = w.elapsedSec();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    double b = w.elapsedSec();
    EXPECT_GE(a, 0.0);
    EXPECT_GT(b, a);
    w.reset();
    EXPECT_LT(w.elapsedSec(), b);
}

TEST(Timer, ScopedTimerRecordsOnDestruction)
{
    Summary s;
    {
        ScopedTimer t(s);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(s.count(), 1u);
    EXPECT_GT(s.max(), 0.0);
}

TEST(Timer, ScopedTimerStopDisarms)
{
    Summary s;
    {
        ScopedTimer t(s);
        double sec = t.stop();
        EXPECT_GE(sec, 0.0);
    } // destructor must not record again
    EXPECT_EQ(s.count(), 1u);
}

TEST(Timer, ScopedTimerFeedsRegistryPath)
{
    StatsRegistry reg;
    {
        ScopedTimer t(reg, "phase.run_seconds");
    }
    const Summary *s = reg.findSummary("phase.run_seconds");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count(), 1u);
}

TEST(Timer, ProgressMeterDerivesRateAndEta)
{
    obs::ProgressMeter meter(100);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    obs::Progress p = meter.tick(25);
    EXPECT_EQ(p.done, 25u);
    EXPECT_EQ(p.total, 100u);
    EXPECT_GT(p.elapsedSec, 0.0);
    EXPECT_GT(p.perSec, 0.0);
    // 75 remaining at the observed rate.
    EXPECT_NEAR(p.etaSec, 75.0 / p.perSec, 1e-9);

    obs::Progress done = meter.tick(100);
    EXPECT_EQ(done.etaSec, 0.0);
}

TEST(Timer, ProgressMeterHandlesZeroTotal)
{
    // A zero-total meter (empty sweep) must stay well-formed: no
    // division by the total, ETA pinned at zero.
    obs::ProgressMeter meter(0);
    obs::Progress p = meter.tick(0);
    EXPECT_EQ(p.done, 0u);
    EXPECT_EQ(p.total, 0u);
    EXPECT_EQ(p.perSec, 0.0);
    EXPECT_EQ(p.etaSec, 0.0);

    // Ticks beyond an (absent) total still derive a rate but no ETA.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    p = meter.tick(5);
    EXPECT_EQ(p.done, 5u);
    EXPECT_GE(p.perSec, 0.0);
    EXPECT_EQ(p.etaSec, 0.0);
}

TEST(Timer, ProgressMeterResumedBaselineFeedsRateAndEta)
{
    // A resumed sweep starts with a checkpoint baseline: the first
    // tick reports from there, the rate covers only fresh items, and
    // a racing tick below the baseline can never drag done under it.
    obs::ProgressMeter meter(100, 40);
    obs::Progress p = meter.tick(40);
    EXPECT_EQ(p.done, 40u);
    EXPECT_EQ(p.resumed, 40u);
    EXPECT_EQ(p.perSec, 0.0); // nothing freshly processed yet

    EXPECT_EQ(meter.tick(10).done, 40u); // below baseline: clamped

    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    p = meter.tick(70);
    EXPECT_EQ(p.done, 70u);
    EXPECT_GT(p.perSec, 0.0);
    // Rate covers the 30 fresh items, not all 70; ETA for the
    // remaining 30 at that rate.
    EXPECT_NEAR(p.perSec * p.elapsedSec, 30.0, 1e-6);
    EXPECT_NEAR(p.etaSec, 30.0 / p.perSec, 1e-9);

    // A resumed count above the total is clamped to the total.
    obs::ProgressMeter over(10, 50);
    EXPECT_EQ(over.tick(10).resumed, 10u);
}

TEST(Timer, ProgressMeterKeepsDoneMonotonicUnderOutOfOrderTicks)
{
    // Parallel workers can report completions out of order; the meter
    // must never let the visible done count move backwards.
    obs::ProgressMeter meter(10);
    EXPECT_EQ(meter.tick(7).done, 7u);
    EXPECT_EQ(meter.tick(3).done, 7u); // late arrival clamped up
    EXPECT_EQ(meter.tick(10).done, 10u);
    EXPECT_EQ(meter.tick(9).done, 10u);
}

TEST(Timer, ProgressReporterDropsStaleAndDuplicateTicks)
{
    setLogLevel(LogLevel::Info);
    obs::ProgressReporter reporter("unit", 0.0, 0);
    obs::ProgressMeter meter(4);

    testing::internal::CaptureStderr();
    reporter(meter.tick(2));
    reporter(meter.tick(1)); // stale: below what was printed
    reporter(meter.tick(4)); // finished
    reporter(meter.tick(4)); // duplicate finish
    std::string err = testing::internal::GetCapturedStderr();

    EXPECT_NE(err.find("2/4"), std::string::npos);
    EXPECT_NE(err.find("100%"), std::string::npos);
    // Exactly one finish line, and no line for the stale tick.  With
    // the monotonic meter the stale tick reports done=2 again, which
    // the reporter must also drop as a duplicate.
    EXPECT_EQ(err.find("100%"), err.rfind("100%"));
    std::size_t first = err.find("2/4");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(err.find("2/4", first + 1), std::string::npos);
}

TEST(Timer, ProgressReporterCarriesResumedBaselineToFinalLine)
{
    setLogLevel(LogLevel::Info);
    obs::ProgressReporter reporter("unit", 0.0, 0);
    obs::ProgressMeter meter(4, 3);

    testing::internal::CaptureStderr();
    reporter(meter.tick(3));
    reporter(meter.tick(4));
    std::string err = testing::internal::GetCapturedStderr();

    // Every line, including the finish line, names the baseline so a
    // resumed run's "4/4 in 0.0s" reads as resume, not magic.
    EXPECT_NE(err.find("3 resumed"), std::string::npos);
    std::size_t finish = err.find("100%");
    ASSERT_NE(finish, std::string::npos);
    EXPECT_NE(err.find("3 resumed", finish), std::string::npos);
}

TEST(Timer, ProgressReporterHandlesZeroTotal)
{
    setLogLevel(LogLevel::Info);
    obs::ProgressReporter reporter("unit", 0.0, 0);
    obs::ProgressMeter meter(0);
    testing::internal::CaptureStderr();
    reporter(meter.tick(0));
    reporter(meter.tick(1));
    std::string err = testing::internal::GetCapturedStderr();
    // No crash, no division by zero; the 0-total run reports counts.
    EXPECT_NE(err.find("0/0"), std::string::npos);
}

TEST(Timer, FormatDuration)
{
    EXPECT_EQ(obs::formatDuration(12.4), "12.4s");
    EXPECT_EQ(obs::formatDuration(200.0), "3m20s");
    EXPECT_EQ(obs::formatDuration(3720.0), "1h02m");
}

// ---------------------------------------------------------------------
// RunReport

TEST(Report, CarriesEnvelopeAndSections)
{
    RunReport report("unit_test");
    EXPECT_EQ(report.tool(), "unit_test");
    EXPECT_EQ(report.doc().find("schema_version")->asUInt(),
              RunReport::schemaVersion);
    EXPECT_EQ(report.doc().find("tool")->asString(), "unit_test");

    report.section("config")["nodes"] = Json(16);
    EXPECT_EQ(report.doc().find("config")->find("nodes")->asUInt(),
              16u);
}

TEST(Report, AddRegistryCopiesTimingSummaries)
{
    StatsRegistry reg;
    reg.counter("proto.misses") += 9;
    reg.summary("sim.phase_seconds").add(0.5);
    reg.summary("sim.phase_seconds").add(1.5);
    reg.summary("eval.events_per_sec").add(100.0); // not a timing

    RunReport report("unit_test");
    report.addRegistry(reg);
    report.setWallSeconds(2.0);

    const Json &doc = report.doc();
    EXPECT_EQ(doc.find("stats")
                  ->find("proto")
                  ->find("misses")
                  ->asUInt(),
              9u);
    const Json *timings = doc.find("timings");
    ASSERT_NE(timings, nullptr);
    const Json *phase = timings->find("sim.phase_seconds");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->find("count")->asUInt(), 2u);
    EXPECT_DOUBLE_EQ(phase->find("mean")->asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(phase->find("stddev")->asDouble(), 0.5);
    EXPECT_EQ(timings->find("eval.events_per_sec"), nullptr);
    EXPECT_DOUBLE_EQ(timings->find("wall_seconds")->asDouble(), 2.0);
}

TEST(Report, WriteFileRoundTrips)
{
    RunReport report("unit_test");
    report.section("results")["ok"] = Json(true);

    std::string path =
        testing::TempDir() + "/ccp_obs_test_report.json";
    ASSERT_TRUE(report.writeFile(path));

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    auto parsed = Json::parse(ss.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->find("results")->find("ok")->asBool());
    std::remove(path.c_str());
}

} // namespace
