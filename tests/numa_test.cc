/**
 * @file
 * Tests for the dependency-free NUMA plumbing (common/numa.hh): the
 * sysfs cpulist grammar, topology discovery's graceful degradation,
 * pinning edge cases, and the ThreadPool worker start hook that
 * ParallelSweep uses to spread workers across nodes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/numa.hh"
#include "common/thread_pool.hh"

namespace {

using namespace ccp;

TEST(ParseCpuList, SingleValuesAndRanges)
{
    EXPECT_EQ(parseCpuList("0"), (std::vector<unsigned>{0}));
    EXPECT_EQ(parseCpuList("0-3"),
              (std::vector<unsigned>{0, 1, 2, 3}));
    EXPECT_EQ(parseCpuList("0-3,8,10-11"),
              (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(ParseCpuList, TrimsWhitespaceAndTrailingNewline)
{
    // The sysfs file ends in a newline; real-world lists may carry
    // stray spaces around commas.
    EXPECT_EQ(parseCpuList("0-1\n"), (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(parseCpuList(" 2 , 4-5 "),
              (std::vector<unsigned>{2, 4, 5}));
}

TEST(ParseCpuList, EmptyAndMalformedInputsYieldNothingExtra)
{
    EXPECT_TRUE(parseCpuList("").empty());
    EXPECT_TRUE(parseCpuList("\n").empty());
    EXPECT_TRUE(parseCpuList("cpu").empty());
    // A malformed tail must not invent cpus after the valid prefix.
    const auto partial = parseCpuList("0-1,bogus,5");
    for (unsigned c : partial)
        EXPECT_LE(c, 1u);
    // An inverted range is rejected, not exploded.
    EXPECT_TRUE(parseCpuList("3-1").empty());
}

TEST(NumaTopology, DiscoversAtLeastTheDegenerateShape)
{
    // On any host — Linux or not, sysfs or not — discovery must
    // return a consistent topology: every listed node has at least
    // one cpu, and node ids are unique.
    const NumaTopology topo = numaTopology();
    std::set<unsigned> ids;
    for (const NumaNode &node : topo.nodes) {
        EXPECT_FALSE(node.cpus.empty())
            << "node " << node.id << " has no cpus";
        EXPECT_TRUE(ids.insert(node.id).second)
            << "duplicate node id " << node.id;
    }
    EXPECT_EQ(topo.multiNode(), topo.nodes.size() > 1);
}

TEST(PinCurrentThread, EmptyCpuSetIsRefused)
{
    EXPECT_FALSE(pinCurrentThread({}));
}

#if defined(__linux__)

TEST(PinCurrentThread, PinningToAnExistingCpuSucceeds)
{
    const NumaTopology topo = numaTopology();
    std::vector<unsigned> cpus;
    if (!topo.nodes.empty())
        cpus = topo.nodes.front().cpus;
    else
        cpus.push_back(0);
    EXPECT_TRUE(pinCurrentThread(cpus));
}

#endif // __linux__

/** Run one barrier job per pool thread: every worker (caller
 *  included) must take exactly one job before any can finish, so the
 *  call returning proves every spawned worker woke — and therefore
 *  ran any pending start hook first. */
void
runOnEveryWorker(ThreadPool &pool)
{
    std::atomic<unsigned> arrived{0};
    pool.forEach(
        pool.threads(),
        [&](std::size_t, unsigned) {
            arrived.fetch_add(1);
            while (arrived.load() < pool.threads())
                std::this_thread::yield();
        },
        1);
}

/**
 * The hook contract ParallelSweep's NUMA pinning relies on: the hook
 * runs once on every spawned worker (ids 1..threads-1), on the
 * worker's own thread, never on the caller (worker 0), and a
 * replacement hook runs again on every worker.
 */
TEST(ThreadPoolWorkerHook, FiresOncePerSpawnedWorker)
{
    ThreadPool pool(4);
    ASSERT_GE(pool.threads(), 2u);
    std::mutex mu;
    std::set<unsigned> seen;
    std::atomic<int> fired{0};
    pool.setWorkerStartHook([&](unsigned worker) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(worker);
        ++fired;
    });

    runOnEveryWorker(pool);
    {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_EQ(seen.size(), pool.threads() - 1);
        EXPECT_EQ(seen.count(0u), 0u) << "hook ran on the caller";
        for (unsigned w = 1; w < pool.threads(); ++w)
            EXPECT_EQ(seen.count(w), 1u) << "worker " << w;
    }

    // Re-running work must not re-fire an unchanged hook.
    const int after_first = fired.load();
    runOnEveryWorker(pool);
    EXPECT_EQ(fired.load(), after_first);

    // Installing a new hook runs it on every worker again.
    pool.setWorkerStartHook([&](unsigned) { ++fired; });
    runOnEveryWorker(pool);
    EXPECT_EQ(fired.load(),
              after_first + static_cast<int>(pool.threads()) - 1);
}

} // namespace
