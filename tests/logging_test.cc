/**
 * @file
 * Tests for the log-level filter and the ccp_debug macro.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace {

using ccp::LogLevel;
using ccp::logLevel;
using ccp::parseLogLevel;
using ccp::setLogLevel;

/** Restore the ambient level after each test. */
class Logging : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = logLevel(); }
    void TearDown() override { setLogLevel(saved_); }

  private:
    LogLevel saved_;
};

TEST_F(Logging, ParseAcceptsAllSpellings)
{
    struct Case
    {
        const char *text;
        LogLevel level;
    };
    for (const Case &c : {Case{"quiet", LogLevel::Quiet},
                          Case{"none", LogLevel::Quiet},
                          Case{"warn", LogLevel::Warn},
                          Case{"WARNING", LogLevel::Warn},
                          Case{"info", LogLevel::Info},
                          Case{"Debug", LogLevel::Debug}}) {
        LogLevel out = LogLevel::Info;
        EXPECT_TRUE(parseLogLevel(c.text, out)) << c.text;
        EXPECT_EQ(out, c.level) << c.text;
    }
}

TEST_F(Logging, ParseRejectsUnknownAndLeavesOutputAlone)
{
    LogLevel out = LogLevel::Warn;
    EXPECT_FALSE(parseLogLevel("loud", out));
    EXPECT_FALSE(parseLogLevel("", out));
    EXPECT_EQ(out, LogLevel::Warn);
}

TEST_F(Logging, SetOverridesLevel)
{
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
}

TEST_F(Logging, DebugMacroSkipsFormattingWhenDisabled)
{
    setLogLevel(LogLevel::Info);
    int formatted = 0;
    auto expensive = [&] {
        ++formatted;
        return "x";
    };
    ccp_debug("value ", expensive());
    EXPECT_EQ(formatted, 0);

    setLogLevel(LogLevel::Debug);
    ccp_debug("value ", expensive());
    EXPECT_EQ(formatted, 1);
}

TEST_F(Logging, WarnGoesToStderrAndRespectsLevel)
{
    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    ccp_warn("suspicious");
    EXPECT_NE(testing::internal::GetCapturedStderr().find("suspicious"),
              std::string::npos);

    setLogLevel(LogLevel::Quiet);
    testing::internal::CaptureStderr();
    ccp_warn("silenced");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(Logging, InformRespectsLevel)
{
    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStdout();
    ccp_inform("status");
    EXPECT_NE(testing::internal::GetCapturedStdout().find("status"),
              std::string::npos);

    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStdout();
    ccp_inform("hidden");
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "");
}

TEST_F(Logging, DebugPrintsOnlyAtDebug)
{
    setLogLevel(LogLevel::Debug);
    testing::internal::CaptureStderr();
    ccp_debug("trace me");
    EXPECT_NE(testing::internal::GetCapturedStderr().find("trace me"),
              std::string::npos);
}

} // namespace
