/**
 * @file
 * Tests for the Machine phase interleaver.
 */

#include <gtest/gtest.h>

#include "mem/protocol.hh"
#include "sim/machine.hh"

namespace {

using namespace ccp;
using mem::MachineConfig;
using sim::Machine;
using sim::MemOp;
using sim::PhaseOps;

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.nNodes = 4;
    cfg.l1 = {512, 1};
    cfg.l2 = {4096, 2};
    cfg.torusWidth = 2;
    return cfg;
}

TEST(Machine, ExecutesAllOps)
{
    Machine m(smallConfig(), "t", 1);
    PhaseOps ops(4);
    for (NodeId n = 0; n < 4; ++n)
        for (int i = 0; i < 10; ++i)
            ops[n].push_back(
                {blockBase(n * 16 + i), 0x400, true});
    m.runPhase(ops);
    EXPECT_EQ(m.controller().stats().writes, 40u);
    for (auto &v : ops)
        EXPECT_TRUE(v.empty()); // consumed
}

TEST(Machine, PhaseOrderingIsABarrier)
{
    // Node 0 writes in phase 1; node 1 reads in phase 2.  The read
    // must observe the written version (i.e. be recorded as a reader
    // of phase 1's event) in every interleaving.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Machine m(smallConfig(), "t", seed);
        PhaseOps ops(4);
        ops[0].push_back({blockBase(5), 0x400, true});
        m.runPhase(ops);
        ops.assign(4, {});
        ops[1].push_back({blockBase(5), 0, false});
        m.runPhase(ops);

        const auto &tr = m.trace();
        ASSERT_EQ(tr.events().size(), 1u);
        EXPECT_TRUE(tr.events()[0].readers.test(1));
    }
}

TEST(Machine, InterleavingIsSeedDeterministic)
{
    auto run = [](std::uint64_t seed) {
        Machine m(smallConfig(), "t", seed);
        PhaseOps ops(4);
        // All nodes hammer the same blocks: event order depends on
        // the interleaving.
        for (NodeId n = 0; n < 4; ++n)
            for (int i = 0; i < 50; ++i)
                ops[n].push_back(
                    {blockBase(i % 8), Pc(0x400 + 4 * n), true});
        m.runPhase(ops);
        return m.finish();
    };

    auto a = run(7), b = run(7), c = run(8);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].pid, b.events()[i].pid);
        EXPECT_EQ(a.events()[i].block, b.events()[i].block);
        EXPECT_EQ(a.events()[i].readers.raw(),
                  b.events()[i].readers.raw());
    }
    // A different seed should give a different interleaving of the
    // contended stream (identical order is astronomically unlikely).
    bool same = a.events().size() == c.events().size();
    if (same) {
        for (std::size_t i = 0; i < a.events().size(); ++i)
            same = same && a.events()[i].pid == c.events()[i].pid;
    }
    EXPECT_FALSE(same);
}

TEST(Machine, MixedInterleavingSharesWithinPhase)
{
    // Within one phase, different nodes' ops do interleave: with many
    // write/read pairs on both sides, both nodes should appear as
    // readers of some of each other's versions.
    Machine m(smallConfig(), "t", 3);
    m.setMaxBurst(2);
    PhaseOps ops(4);
    for (int i = 0; i < 200; ++i) {
        ops[0].push_back({blockBase(1), 0x400, true});
        ops[1].push_back({blockBase(1), 0, false});
    }
    m.runPhase(ops);
    const auto &evs = m.trace().events();
    ASSERT_GT(evs.size(), 0u);
    unsigned with_reader = 0;
    for (const auto &ev : evs)
        with_reader += ev.readers.test(1);
    EXPECT_GT(with_reader, 0u);
}

TEST(Machine, FinishMovesFinalizedTrace)
{
    Machine m(smallConfig(), "named", 1);
    PhaseOps ops(4);
    ops[2].push_back({blockBase(1), 0x404, true});
    ops[2].push_back({blockBase(2), 0x404, true});
    m.runPhase(ops);
    auto tr = m.finish();
    EXPECT_EQ(tr.name(), "named");
    EXPECT_EQ(tr.meta().totalOps, 2u);
    EXPECT_EQ(tr.meta().blocksTouched, 2u);
    EXPECT_EQ(tr.meta().maxStaticStoresPerNode, 1u);
}

TEST(Machine, WrongPhaseWidthDies)
{
    Machine m(smallConfig(), "t", 1);
    PhaseOps ops(3);
    EXPECT_DEATH(m.runPhase(ops), "every node");
}

} // namespace
