/**
 * @file
 * Property tests for the hashed-perceptron sharing predictor: weight
 * saturation never escapes the architected clamp bounds under
 * adversarial update sequences, training is deterministic across
 * thread counts, and the Bloom negative filter suppresses dead
 * sharers, self-ages, and keeps its observed false-positive rate
 * under the analytic bound on synthetic traces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "predict/function.hh"
#include "sweep/name.hh"
#include "sweep/parallel.hh"
#include "sweep/search.hh"
#include "sweep/space.hh"
#include "trace/trace.hh"

namespace {

using namespace ccp;
using predict::FunctionKind;
using predict::makeFunction;
using predict::PerceptronFunction;
using predict::PerceptronParams;
using predict::SchemeSpec;
using predict::UpdateMode;

std::vector<std::uint64_t>
freshState(const PerceptronFunction &fn)
{
    return std::vector<std::uint64_t>(fn.entryWords(), 0);
}

PerceptronParams
params(unsigned weight_bits, unsigned theta, unsigned bloom_bits = 0)
{
    PerceptronParams p;
    p.weightBits = weight_bits;
    p.theta = theta;
    p.bloomBits = bloom_bits;
    return p;
}

// ---------------------------------------------------------------------
// Prediction semantics

TEST(Perceptron, ColdEntryAbstains)
{
    // theta >= 1 guarantees the all-zero entry predicts nothing —
    // appropriate given the low prevalence of sharing.
    for (unsigned theta : {1u, 2u, 8u}) {
        PerceptronFunction fn(2, 16, params(5, theta));
        auto st = freshState(fn);
        EXPECT_TRUE(fn.predict(st.data()).empty()) << "theta " << theta;
    }
}

TEST(Perceptron, LearnsStablePattern)
{
    PerceptronFunction fn(2, 16, params(5, 2));
    auto st = freshState(fn);
    for (int k = 0; k < 20; ++k)
        fn.update(st.data(), SharingBitmap(0b0101));
    EXPECT_EQ(fn.predict(st.data()).raw(), 0b0101u);
}

TEST(Perceptron, TwoObservationsClearUnitThreshold)
{
    // Worked example at depth 1, theta 1: from cold, update #1 trains
    // the bias to +1 (history bit still 0, so w1 moves to -1); update
    // #2 sees history 1 and trains both to (+2, 0); the dot is then
    // w0 + w1 = 2 >= 1.
    PerceptronFunction fn(1, 4, params(5, 1));
    auto st = freshState(fn);
    fn.update(st.data(), SharingBitmap(0b0100));
    EXPECT_FALSE(fn.predict(st.data()).test(2));
    fn.update(st.data(), SharingBitmap(0b0100));
    EXPECT_TRUE(fn.predict(st.data()).test(2));
    EXPECT_EQ(fn.dot(st.data(), 2), 2);
}

TEST(Perceptron, NodesAreIndependent)
{
    PerceptronFunction fn(2, 16, params(5, 2));
    auto st = freshState(fn);
    for (int k = 0; k < 10; ++k)
        fn.update(st.data(), SharingBitmap(1ull << 7));
    SharingBitmap pred = fn.predict(st.data());
    EXPECT_TRUE(pred.test(7));
    EXPECT_EQ(pred.popcount(), 1u);
}

TEST(Perceptron, PredictMatchesDotAndSuppression)
{
    // The emitted bitmap is exactly the per-node decision the public
    // accessors describe: dot >= theta and not Bloom-suppressed.
    PerceptronFunction fn(3, 16, params(5, 2, 16));
    auto st = freshState(fn);
    Rng rng(19);
    for (int k = 0; k < 300; ++k) {
        fn.update(st.data(), SharingBitmap(rng() & 0xffff));
        SharingBitmap pred = fn.predict(st.data());
        for (unsigned n = 0; n < 16; ++n) {
            const bool want = fn.dot(st.data(), n) >= 2 &&
                              !fn.bloomSuppressed(st.data(), n);
            EXPECT_EQ(pred.test(n), want) << "node " << n;
        }
    }
}

TEST(Perceptron, DeepStateLayoutIsSound)
{
    // 64 nodes at depth 5 forces per-node histories to straddle
    // 64-bit word boundaries; the weight lanes and Bloom word follow
    // and must not alias them.
    PerceptronFunction fn(5, 64, params(5, 2, 32));
    auto st = freshState(fn);
    Rng rng(3);
    for (int k = 0; k < 200; ++k)
        fn.update(st.data(), SharingBitmap(rng()));
    for (int k = 0; k < 20; ++k)
        fn.update(st.data(), SharingBitmap(1ull << 63));
    EXPECT_TRUE(fn.predict(st.data()).test(63));
}

TEST(Perceptron, ThetaMonotonicityOnFixedState)
{
    // theta changes the decision, never the state layout: on any
    // fixed trained entry, a higher threshold predicts a subset.
    PerceptronFunction trainer(3, 16, params(5, 1));
    PerceptronFunction strict(3, 16, params(5, 3));
    auto st = freshState(trainer);
    Rng rng(29);
    for (int k = 0; k < 400; ++k) {
        trainer.update(st.data(), SharingBitmap(rng() & 0xffff));
        EXPECT_TRUE(strict.predict(st.data())
                        .subsetOf(trainer.predict(st.data())));
    }
}

// ---------------------------------------------------------------------
// Saturating weight arithmetic

/** All weight lanes of an entry, read straight from the raw state. */
std::vector<int>
rawWeights(const std::vector<std::uint64_t> &st, unsigned depth,
           unsigned n_nodes)
{
    const std::size_t history_words =
        (std::size_t(n_nodes) * depth + 63) / 64;
    const auto *lanes = reinterpret_cast<const std::int8_t *>(
        st.data() + history_words);
    std::vector<int> out;
    for (std::size_t i = 0;
         i < std::size_t(n_nodes) * (depth + 1); ++i)
        out.push_back(lanes[i]);
    return out;
}

TEST(Perceptron, WeightsNeverEscapeClampBounds)
{
    // Adversarial sequences at several architected widths: solid
    // trains, phase-flips, random noise.  Every weight lane must stay
    // inside [weightMin, weightMax] after every single update.
    for (unsigned wb : {2u, 3u, 5u, 8u}) {
        const unsigned depth = 4, nodes = 16;
        PerceptronFunction fn(depth, nodes, params(wb, 1));
        auto st = freshState(fn);
        Rng rng(1000 + wb);
        for (int k = 0; k < 600; ++k) {
            std::uint64_t fb;
            switch (k % 4) {
              case 0: fb = 0xffff; break;           // saturate up
              case 1: fb = 0; break;                // saturate down
              case 2: fb = 0xaaaa; break;           // phase flip
              default: fb = rng() & 0xffff; break;  // noise
            }
            fn.update(st.data(), SharingBitmap(fb));
            for (int w : rawWeights(st, depth, nodes)) {
                ASSERT_GE(w, fn.weightMin()) << "width " << wb;
                ASSERT_LE(w, fn.weightMax()) << "width " << wb;
            }
        }
    }
}

TEST(Perceptron, DotStaysWithinArchitectedBound)
{
    // |dot| <= (depth + 1) * 2^(wb-1) on any reachable state.
    const unsigned depth = 3, wb = 4;
    PerceptronFunction fn(depth, 8, params(wb, 1));
    auto st = freshState(fn);
    const int bound = int(depth + 1) * (1 << (wb - 1));
    Rng rng(55);
    for (int k = 0; k < 500; ++k) {
        fn.update(st.data(), SharingBitmap(rng() & 0xff));
        for (unsigned n = 0; n < 8; ++n) {
            EXPECT_LE(fn.dot(st.data(), n), bound);
            EXPECT_GE(fn.dot(st.data(), n), -bound);
        }
    }
}

TEST(Perceptron, SaturationNoWrap)
{
    // Identical feedback reaches a fixed point: margin training stops
    // once the dot clears theta, so a hundred further trains leave the
    // state exactly where ten did — a wrapped counter would drift or
    // cycle instead.
    PerceptronFunction fn(1, 2, params(3, 1));
    auto st = freshState(fn);
    for (int k = 0; k < 10; ++k)
        fn.update(st.data(), SharingBitmap(0b01));
    EXPECT_TRUE(fn.predict(st.data()).test(0));
    const int settled = fn.dot(st.data(), 0);
    EXPECT_GE(settled, 1);
    for (int k = 0; k < 100; ++k)
        fn.update(st.data(), SharingBitmap(0b01));
    EXPECT_EQ(fn.dot(st.data(), 0), settled);
    EXPECT_TRUE(fn.predict(st.data()).test(0));
    // One contrary observation dents the margin but two reads restore
    // it; sustained contrary evidence does flip the decision.
    fn.update(st.data(), SharingBitmap(0b00));
    fn.update(st.data(), SharingBitmap(0b01));
    fn.update(st.data(), SharingBitmap(0b01));
    EXPECT_TRUE(fn.predict(st.data()).test(0));
    for (int k = 0; k < 8; ++k)
        fn.update(st.data(), SharingBitmap(0b00));
    EXPECT_FALSE(fn.predict(st.data()).test(0));
}

// ---------------------------------------------------------------------
// Cost accounting

TEST(Perceptron, EntryBitsFollowCostModel)
{
    // N * (depth + (depth+1) * weightBits) + (bloom ? bloom + 8 : 0).
    EXPECT_EQ(PerceptronFunction(2, 16, params(5, 2)).entryBits(16),
              16u * (2 + 3 * 5));
    EXPECT_EQ(PerceptronFunction(2, 16, params(5, 2, 16)).entryBits(16),
              16u * (2 + 3 * 5) + 16 + 8);
    EXPECT_EQ(PerceptronFunction(4, 32, params(8, 1)).entryBits(32),
              32u * (4 + 5 * 8));
}

TEST(Perceptron, StateWordsAccountForEveryLane)
{
    // histories + int8 weight lanes (+ one Bloom word when enabled).
    auto words = [](unsigned depth, unsigned nodes, unsigned bloom) {
        std::size_t hw = (std::size_t(nodes) * depth + 63) / 64;
        std::size_t ww = (std::size_t(nodes) * (depth + 1) + 7) / 8;
        return hw + ww + (bloom ? 1 : 0);
    };
    EXPECT_EQ(PerceptronFunction(2, 16, params(5, 2)).entryWords(),
              words(2, 16, 0));
    EXPECT_EQ(PerceptronFunction(2, 16, params(5, 2, 16)).entryWords(),
              words(2, 16, 16));
    EXPECT_EQ(PerceptronFunction(8, 64, params(5, 2, 32)).entryWords(),
              words(8, 64, 32));
}

// ---------------------------------------------------------------------
// Bloom negative filter

/** Bring every node in @p dead to a confident raw prediction (two
 *  solid trains from the given state), then one empty feedback turns
 *  each of them into a would-be false positive: all are inserted into
 *  the Bloom filter within a single aging generation. */
void
insertDeadSet(const PerceptronFunction &fn, std::uint64_t *state,
              const std::set<unsigned> &dead)
{
    std::uint64_t bits = 0;
    for (unsigned n : dead)
        bits |= 1ull << n;
    fn.update(state, SharingBitmap(bits));
    fn.update(state, SharingBitmap(bits));
    fn.update(state, SharingBitmap(0));
}

TEST(Perceptron, BloomSuppressesDeadSharer)
{
    PerceptronFunction fn(1, 16, params(5, 1, 16));
    auto st = freshState(fn);
    insertDeadSet(fn, st.data(), {2});
    // The raw perceptron still clears theta — only the filter keeps
    // the dead reader out of the emitted bitmap.
    EXPECT_GE(fn.dot(st.data(), 2), 1);
    EXPECT_TRUE(fn.bloomSuppressed(st.data(), 2));
    EXPECT_FALSE(fn.predict(st.data()).test(2));
}

TEST(Perceptron, BloomDisabledNeverSuppresses)
{
    PerceptronFunction fn(1, 16, params(5, 1, 0));
    auto st = freshState(fn);
    insertDeadSet(fn, st.data(), {2});
    EXPECT_EQ(fn.bloomCapacity(), 0u);
    EXPECT_EQ(fn.bloomFprBound(), 0.0);
    for (unsigned n = 0; n < 16; ++n)
        EXPECT_FALSE(fn.bloomSuppressed(st.data(), n));
    EXPECT_TRUE(fn.predict(st.data()).test(2));
}

TEST(Perceptron, BloomSelfAges)
{
    // bloomBits 16 -> capacity 4.  Five dead readers inserted in one
    // update overflow the generation: the insert that exceeds
    // capacity clears the filter first, so the earlier four come back
    // while the last one is freshly suppressed.
    PerceptronFunction fn(1, 16, params(5, 1, 16));
    ASSERT_EQ(fn.bloomCapacity(), 4u);
    auto st = freshState(fn);
    insertDeadSet(fn, st.data(), {1, 2, 3, 4, 9});
    EXPECT_TRUE(fn.bloomSuppressed(st.data(), 9));
    for (unsigned n : {1u, 2u, 3u, 4u})
        EXPECT_FALSE(fn.bloomSuppressed(st.data(), n)) << "node " << n;
}

TEST(Perceptron, BloomNoFalseNegatives)
{
    // Every member of a within-capacity dead set is suppressed.
    PerceptronFunction fn(1, 64, params(5, 1, 32));
    ASSERT_EQ(fn.bloomCapacity(), 8u);
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        std::set<unsigned> dead;
        while (dead.size() < 8)
            dead.insert(unsigned(rng.below(64)));
        auto st = freshState(fn);
        insertDeadSet(fn, st.data(), dead);
        for (unsigned n : dead)
            EXPECT_TRUE(fn.bloomSuppressed(st.data(), n))
                << "trial " << trial << " node " << n;
    }
}

TEST(Perceptron, BloomObservedFprUnderBound)
{
    // Fill the filter to capacity with random dead sets and measure
    // how often a non-member is falsely suppressed.  The self-aging
    // cap bounds the analytic rate at (1 - e^(-2*cap/m))^2; the
    // observed mean over many synthetic trials must stay under it
    // (with slack for the finite-trial estimate and the fixed
    // per-node hash masks).
    PerceptronFunction fn(1, 64, params(5, 1, 32));
    const double bound = fn.bloomFprBound();
    ASSERT_GT(bound, 0.0);
    ASSERT_LT(bound, 0.2);

    Rng rng(4242);
    std::uint64_t false_pos = 0, probes = 0;
    for (int trial = 0; trial < 200; ++trial) {
        std::set<unsigned> dead;
        while (dead.size() < fn.bloomCapacity())
            dead.insert(unsigned(rng.below(64)));
        auto st = freshState(fn);
        insertDeadSet(fn, st.data(), dead);
        for (unsigned n = 0; n < 64; ++n) {
            if (dead.count(n))
                continue;
            ++probes;
            false_pos += fn.bloomSuppressed(st.data(), n);
        }
    }
    const double observed = double(false_pos) / double(probes);
    EXPECT_LE(observed, bound * 1.25)
        << "observed " << observed << " vs bound " << bound;
}

TEST(Perceptron, BloomFprBoundIsScaleFree)
{
    // The self-aging cap is a fixed quarter of the filter size, so
    // the analytic bound (1 - e^(-2*cap/m))^2 is the same at every m:
    // sizing the filter buys insert capacity, not a worse (or better)
    // false-positive rate.  Pin the value so a policy change shows up.
    const double expect = 0.15481812174617549; // (1 - e^-0.5)^2
    for (unsigned m : {4u, 8u, 16u, 32u}) {
        double b = PerceptronFunction(1, 16, params(5, 1, m))
                       .bloomFprBound();
        EXPECT_NEAR(b, expect, 1e-12) << "m " << m;
        EXPECT_EQ(PerceptronFunction(1, 16, params(5, 1, m))
                      .bloomCapacity(),
                  m / 4);
    }
}

// ---------------------------------------------------------------------
// Determinism across thread counts

trace::SharingTrace
noisyTrace(const char *name, std::uint64_t seed)
{
    trace::SharingTrace tr(name, 16);
    trace::CoherenceEvent prev_by_block[32];
    bool seen[32] = {};
    Rng rng(seed);
    for (int i = 0; i < 1200; ++i) {
        unsigned k = static_cast<unsigned>(rng.below(32));
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(k % 16);
        ev.pc = 0x400 + 4 * (k % 8);
        ev.block = k;
        ev.dir = k % 16;
        ev.readers = SharingBitmap::single((k + 1) % 16);
        if (rng.below(4) == 0)
            ev.readers.set(static_cast<NodeId>(rng.below(16)));
        if (seen[k]) {
            ev.invalidated = prev_by_block[k].readers;
            ev.prevWriterPid = prev_by_block[k].pid;
            ev.prevWriterPc = prev_by_block[k].pc;
            ev.hasPrevWriter = true;
        }
        seen[k] = true;
        prev_by_block[k] = ev;
        tr.append(ev);
    }
    return tr;
}

TEST(Perceptron, TrainingDeterministicAcrossThreadCounts)
{
    // Perceptron training is a pure fold over the trace: the sweep
    // must produce bit-identical confusion counts at any thread
    // count, hashed index and Bloom filter included.
    std::vector<trace::SharingTrace> suite;
    suite.push_back(noisyTrace("alpha", 101));
    suite.push_back(noisyTrace("beta", 202));

    sweep::SpaceSpec spec;
    spec.maxBits = std::uint64_t(1) << 14;
    spec.pcBitsGrid = {0, 4};
    spec.addrBitsGrid = {0, 4};
    spec.windowDepths = {};
    spec.pasDepths = {};
    spec.percDepths = {1, 2};
    spec.percWeightBits = {5};
    spec.percThetas = {1, 2};
    spec.percBloomBits = {0, 16};
    auto schemes = enumerateSchemes(spec);
    ASSERT_GE(schemes.size(), 8u);
    for (const auto &s : schemes)
        ASSERT_EQ(s.kind, FunctionKind::Perceptron);

    auto sequential =
        sweep::evaluateSchemes(suite, schemes, UpdateMode::Direct, 1);
    for (unsigned threads : {2u, 8u}) {
        auto parallel = sweep::evaluateSchemes(suite, schemes,
                                               UpdateMode::Direct,
                                               threads);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (std::size_t i = 0; i < parallel.size(); ++i) {
            const std::string what = sweep::formatScheme(schemes[i]) +
                                     " @" + std::to_string(threads);
            EXPECT_EQ(parallel[i].pooled.tp, sequential[i].pooled.tp)
                << what;
            EXPECT_EQ(parallel[i].pooled.fp, sequential[i].pooled.fp)
                << what;
            EXPECT_EQ(parallel[i].pooled.tn, sequential[i].pooled.tn)
                << what;
            EXPECT_EQ(parallel[i].pooled.fn, sequential[i].pooled.fn)
                << what;
        }
    }
}

// ---------------------------------------------------------------------
// Factory and naming

TEST(Perceptron, FactoryDispatchAndKindName)
{
    PerceptronParams p = params(6, 3, 8);
    auto fn = makeFunction(FunctionKind::Perceptron, 2, 16, p);
    EXPECT_EQ(fn->kind(), FunctionKind::Perceptron);
    EXPECT_EQ(fn->depth(), 2u);
    EXPECT_EQ(fn->name(), "perceptron");
    EXPECT_STREQ(predict::functionKindName(FunctionKind::Perceptron),
                 "perceptron");
    auto *perc = dynamic_cast<predict::PerceptronFunction *>(fn.get());
    ASSERT_NE(perc, nullptr);
    EXPECT_EQ(perc->params(), p);
    EXPECT_EQ(perc->weightMax(), 31);
    EXPECT_EQ(perc->weightMin(), -32);
}

} // namespace
