/**
 * @file
 * Tests for the 2-D torus network model.
 */

#include <gtest/gtest.h>

#include "net/torus.hh"

namespace {

using ccp::net::Torus2D;
using ccp::net::TorusParams;

TEST(Torus, Geometry)
{
    Torus2D t(4, 4);
    EXPECT_EQ(t.nodes(), 16u);
    EXPECT_EQ(t.width(), 4u);
    EXPECT_EQ(t.height(), 4u);
}

TEST(Torus, HopsAreSymmetricAndZeroOnSelf)
{
    Torus2D t(4, 4);
    for (unsigned a = 0; a < 16; ++a) {
        EXPECT_EQ(t.hops(a, a), 0u);
        for (unsigned b = 0; b < 16; ++b)
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
}

TEST(Torus, WrapAroundShortens)
{
    Torus2D t(4, 4);
    // Nodes 0 and 3 are adjacent through the wrap link.
    EXPECT_EQ(t.hops(0, 3), 1u);
    // Corner to far corner: one wrap hop per dimension.
    EXPECT_EQ(t.hops(0, 15), 2u);
    // Maximum distance on a 4x4 torus is 2+2.
    for (unsigned a = 0; a < 16; ++a)
        for (unsigned b = 0; b < 16; ++b)
            EXPECT_LE(t.hops(a, b), 4u);
}

TEST(Torus, TriangleInequality)
{
    Torus2D t(4, 4);
    for (unsigned a = 0; a < 16; ++a)
        for (unsigned b = 0; b < 16; ++b)
            for (unsigned c = 0; c < 16; ++c)
                EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
}

TEST(Torus, RectangularShape)
{
    Torus2D t(8, 2);
    EXPECT_EQ(t.nodes(), 16u);
    EXPECT_EQ(t.hops(0, 4), 4u);
    EXPECT_EQ(t.hops(0, 8), 1u);  // wrap in Y (rows of 8)
    EXPECT_EQ(t.hops(0, 7), 1u);  // wrap in X
}

TEST(Torus, LatencyMatchesPaperAnchors)
{
    Torus2D t(4, 4);
    // Local access: the paper's 52 cycles.
    EXPECT_EQ(t.latency(0, 0), TorusParams().localLatency);
    // Remote accesses are scattered around the paper's 133-cycle
    // average: the mean over all remote pairs should recover it.
    double total = 0;
    unsigned count = 0;
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 0; b < 16; ++b) {
            if (a == b)
                continue;
            total += static_cast<double>(t.latency(a, b));
            ++count;
        }
    }
    EXPECT_NEAR(total / count, 133.0, 2.0);
}

TEST(Torus, LatencyGrowsWithHops)
{
    Torus2D t(4, 4);
    EXPECT_LT(t.latency(0, 1), t.latency(0, 5));
    EXPECT_LT(t.latency(0, 5), t.latency(0, 10));
}

TEST(Torus, TrafficAccounting)
{
    Torus2D t(4, 4);
    EXPECT_EQ(t.sendMessage(0, 1, 72), 1u);
    EXPECT_EQ(t.totalMessages(), 1u);
    EXPECT_EQ(t.totalByteHops(), 72u);

    EXPECT_EQ(t.sendMessage(0, 10, 10), t.hops(0, 10));
    EXPECT_EQ(t.totalByteHops(), 72u + 10u * t.hops(0, 10));

    // Self-send: a message but no byte-hops.
    t.sendMessage(3, 3, 100);
    EXPECT_EQ(t.totalMessages(), 3u);
    EXPECT_EQ(t.totalByteHops(), 72u + 10u * t.hops(0, 10));
}

TEST(Torus, MaxLinkBytesSeesHotLink)
{
    Torus2D t(4, 4);
    for (int i = 0; i < 10; ++i)
        t.sendMessage(0, 1, 64);
    EXPECT_EQ(t.maxLinkBytes(), 640u);
}

TEST(Torus, ClearTrafficResets)
{
    Torus2D t(4, 4);
    t.sendMessage(0, 5, 64);
    t.clearTraffic();
    EXPECT_EQ(t.totalByteHops(), 0u);
    EXPECT_EQ(t.totalMessages(), 0u);
    EXPECT_EQ(t.maxLinkBytes(), 0u);
}

TEST(Torus, MeanHopsUniformAcrossNodes)
{
    Torus2D t(4, 4);
    // A torus is vertex-transitive: every node sees the same mean.
    double m0 = t.meanHops(0);
    for (unsigned n = 1; n < 16; ++n)
        EXPECT_DOUBLE_EQ(t.meanHops(n), m0);
    EXPECT_NEAR(m0, 2.133, 0.01); // 32/15
}

} // namespace
