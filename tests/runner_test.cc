/**
 * @file
 * Tests for the resilient sweep runner (sweep/runner.hh): equivalence
 * with ParallelSweep at any thread count and kernel, checkpoint/resume
 * determinism (interrupt mid-sweep, resume, byte-identical results),
 * task isolation (injected worker exceptions retried or contained),
 * memory-budget degradation, torn-checkpoint recovery, and the
 * resumed-progress baseline.  All failure paths are driven by the
 * CCP_FAULT_INJECT harness, so every run is reproducible.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/rng.hh"
#include "obs/registry.hh"
#include "sweep/batch.hh"
#include "sweep/checkpoint.hh"
#include "sweep/name.hh"
#include "sweep/runner.hh"
#include "sweep/search.hh"
#include "sweep/space.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;
using sweep::FailureKind;
using sweep::ResilientOutcome;
using sweep::ResilientRunner;
using sweep::RunnerOptions;
using sweep::SweepKernel;

trace::SharingTrace
noisyTrace(const char *name, std::uint64_t seed)
{
    trace::SharingTrace tr(name, 16);
    trace::CoherenceEvent prev_by_block[32];
    bool seen[32] = {};
    Rng rng(seed);
    for (int i = 0; i < 800; ++i) {
        unsigned k = static_cast<unsigned>(rng.below(32));
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(k % 16);
        ev.pc = 0x400 + 4 * (k % 8);
        ev.block = k;
        ev.dir = k % 16;
        ev.readers = SharingBitmap::single((k + 1) % 16);
        if (rng.below(4) == 0)
            ev.readers.set(static_cast<NodeId>(rng.below(16)));
        if (seen[k]) {
            ev.invalidated = prev_by_block[k].readers;
            ev.prevWriterPid = prev_by_block[k].pid;
            ev.prevWriterPc = prev_by_block[k].pc;
            ev.hasPrevWriter = true;
        }
        seen[k] = true;
        prev_by_block[k] = ev;
        tr.append(ev);
    }
    return tr;
}

std::vector<trace::SharingTrace>
smallSuite()
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(noisyTrace("alpha", 7));
    suite.push_back(noisyTrace("beta", 23));
    return suite;
}

std::vector<SchemeSpec>
smallSpace()
{
    sweep::SpaceSpec spec;
    spec.maxBits = std::uint64_t(1) << 12;
    spec.pcBitsGrid = {0, 2, 4};
    spec.addrBitsGrid = {0, 2, 4};
    spec.pasDepths = {1};
    return enumerateSchemes(spec);
}

void
expectSameConfusion(const Confusion &a, const Confusion &b,
                    const std::string &what)
{
    EXPECT_EQ(a.tp, b.tp) << what;
    EXPECT_EQ(a.fp, b.fp) << what;
    EXPECT_EQ(a.tn, b.tn) << what;
    EXPECT_EQ(a.fn, b.fn) << what;
}

void
expectSameResults(const std::vector<SuiteResult> &a,
                  const std::vector<SuiteResult> &b,
                  const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::string scheme = sweep::formatScheme(b[i].scheme);
        EXPECT_EQ(a[i].scheme, b[i].scheme) << what << " " << scheme;
        expectSameConfusion(a[i].pooled, b[i].pooled,
                            what + " " + scheme);
        ASSERT_EQ(a[i].perTrace.size(), b[i].perTrace.size());
        for (std::size_t t = 0; t < a[i].perTrace.size(); ++t) {
            EXPECT_EQ(a[i].perTrace[t].traceName,
                      b[i].perTrace[t].traceName);
            expectSameConfusion(a[i].perTrace[t].confusion,
                                b[i].perTrace[t].confusion,
                                what + " " + scheme);
        }
    }
}

std::uint64_t
counterOf(const obs::StatsRegistry &reg, const std::string &path)
{
    const auto *c = reg.findCounter(path);
    return c ? c->value : 0;
}

class RunnerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();
    }

    void
    TearDown() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();
    }

    /** Arm the fault harness for one scenario. */
    void
    arm(const char *spec)
    {
        ::setenv("CCP_FAULT_INJECT", spec, 1);
        fault::reinit();
    }

    /** A checkpoint base with no leftovers: TempDir persists across
     *  test invocations, and a stale "<base>.<key>.ckpt" from a prior
     *  run would make a fresh sweep resume unexpectedly. */
    std::string
    ckptBase(const char *name) const
    {
        const std::string base = ::testing::TempDir() + name;
        std::error_code ec;
        for (const auto &de : std::filesystem::directory_iterator(
                 ::testing::TempDir(), ec)) {
            const std::string p = de.path().string();
            if (p.rfind(base + ".", 0) == 0)
                std::filesystem::remove(de.path(), ec);
        }
        return base;
    }
};

TEST_F(RunnerTest, MatchesParallelSweepAtAnyThreadCountAndKernel)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    ASSERT_GE(schemes.size(), 20u);

    for (auto kernel :
         {SweepKernel::Batched, SweepKernel::Reference}) {
        auto baseline = sweep::ParallelSweep(1, kernel)
                            .evaluate(suite, schemes,
                                      UpdateMode::Forwarded);
        for (unsigned threads : {1u, 4u}) {
            RunnerOptions opts;
            opts.threads = threads;
            opts.kernel = kernel;
            opts.handleSignals = false;
            auto outcome = ResilientRunner(opts).evaluate(
                suite, schemes, UpdateMode::Forwarded);
            EXPECT_TRUE(outcome.allCompleted());
            EXPECT_FALSE(outcome.interrupted);
            EXPECT_EQ(outcome.exitCode(), 0);
            EXPECT_TRUE(outcome.failures.empty());
            expectSameResults(outcome.results, baseline,
                              std::string(sweepKernelName(kernel)) +
                                  " @" + std::to_string(threads));
        }
    }
}

TEST_F(RunnerTest, InterruptDrainsThenResumeCompletesIdentically)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    auto baseline =
        sweep::ParallelSweep(1, SweepKernel::Reference)
            .evaluate(suite, schemes, UpdateMode::Direct);

    RunnerOptions opts;
    opts.threads = 1;
    opts.kernel = SweepKernel::Reference; // one task per scheme
    opts.checkpointPath = ckptBase("interrupt");
    opts.checkpointIntervalSec = 0; // flush after every batch
    opts.handleSignals = false;

    // Phase 1: injected interrupt when task 5 starts — the runner
    // drains, flushes a checkpoint, and reports the resume exit code.
    arm("sweep.interrupt_at=5");
    obs::StatsRegistry stats1;
    ResilientOutcome partial;
    {
        obs::ScopedRegistry route(stats1);
        partial = ResilientRunner(opts).evaluate(suite, schemes,
                                                 UpdateMode::Direct);
    }
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.exitCode(),
              ResilientOutcome::interruptedExitCode);
    EXPECT_FALSE(partial.allCompleted());
    EXPECT_GE(counterOf(stats1, "sweep.checkpoints_written"), 1u);
    EXPECT_EQ(counterOf(stats1, "sweep.interrupted"), 1u);
    ASSERT_FALSE(partial.checkpointFile.empty());

    std::size_t completed_then = 0;
    for (std::uint8_t c : partial.completed)
        completed_then += c;
    ASSERT_GE(completed_then, 1u);
    ASSERT_LT(completed_then, schemes.size());

    // Phase 2: resume.  Completed schemes come from the checkpoint,
    // the rest are evaluated; the merged results equal an
    // uninterrupted run exactly.
    ::unsetenv("CCP_FAULT_INJECT");
    fault::reinit();
    opts.resume = true;
    obs::StatsRegistry stats2;
    ResilientOutcome full;
    std::size_t first_resumed = schemes.size() + 1;
    {
        obs::ScopedRegistry route(stats2);
        full = ResilientRunner(opts).evaluate(
            suite, schemes, UpdateMode::Direct,
            [&](const obs::Progress &p) {
                if (first_resumed > schemes.size())
                    first_resumed = p.resumed;
                EXPECT_EQ(p.resumed, completed_then);
                EXPECT_GE(p.done, p.resumed);
            });
    }
    EXPECT_TRUE(full.allCompleted());
    EXPECT_FALSE(full.interrupted);
    EXPECT_EQ(full.schemesResumed, completed_then);
    EXPECT_EQ(counterOf(stats2, "sweep.schemes_resumed"),
              completed_then);
    EXPECT_GE(counterOf(stats2, "sweep.batches_resumed"), 1u);
    // The very first progress observation already carries the resumed
    // baseline, so a resumed run never appears to restart from 0%.
    EXPECT_EQ(first_resumed, completed_then);
    expectSameResults(full.results, baseline, "resumed");
}

TEST_F(RunnerTest, ResumeAtDifferentThreadCountIsStillIdentical)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    auto baseline =
        sweep::ParallelSweep(1, SweepKernel::Batched)
            .evaluate(suite, schemes, UpdateMode::Direct);

    RunnerOptions opts;
    opts.threads = 1;
    opts.kernel = SweepKernel::Batched;
    // A small budget forces several batches, so the interrupt lands
    // mid-plan and the batch boundaries are exercised on resume.
    opts.memBudgetBytes = 16 << 10;
    opts.checkpointPath = ckptBase("threads");
    opts.checkpointIntervalSec = 0;
    opts.handleSignals = false;

    // Interrupt mid-plan: ordinal = half the batch count the runner
    // itself will plan (same scheme list, same budget-derived cap).
    const std::size_t n_batches =
        sweep::planBatches(schemes, suite.front().nNodes(),
                           opts.memBudgetBytes / 8)
            .size();
    ASSERT_GE(n_batches, 2u);
    arm(("sweep.interrupt_at=" + std::to_string(n_batches / 2))
            .c_str());
    auto partial = ResilientRunner(opts).evaluate(suite, schemes,
                                                  UpdateMode::Direct);
    ASSERT_TRUE(partial.interrupted);
    ASSERT_FALSE(partial.allCompleted());

    ::unsetenv("CCP_FAULT_INJECT");
    fault::reinit();
    opts.resume = true;
    opts.threads = 4; // resume on MORE threads than the original run
    auto full = ResilientRunner(opts).evaluate(suite, schemes,
                                               UpdateMode::Direct);
    EXPECT_TRUE(full.allCompleted());
    EXPECT_GE(full.schemesResumed, 1u);
    expectSameResults(full.results, baseline, "thread-skew resume");
}

TEST_F(RunnerTest, WorkerThrowIsRetriedOnceAndSucceeds)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    auto baseline =
        sweep::ParallelSweep(1, SweepKernel::Reference)
            .evaluate(suite, schemes, UpdateMode::Direct);

    RunnerOptions opts;
    opts.threads = 2;
    opts.kernel = SweepKernel::Reference;
    opts.maxRetries = 1;
    opts.retryBackoffSec = 0.0; // no need to sleep in tests
    opts.handleSignals = false;

    arm("sweep.worker_throw=3");
    obs::StatsRegistry stats;
    ResilientOutcome outcome;
    {
        obs::ScopedRegistry route(stats);
        outcome = ResilientRunner(opts).evaluate(suite, schemes,
                                                 UpdateMode::Direct);
    }
    // The injected fault fires once; the retry re-evaluates the batch
    // and the sweep completes with full, correct results.
    EXPECT_TRUE(outcome.allCompleted());
    EXPECT_TRUE(outcome.failures.empty());
    EXPECT_EQ(counterOf(stats, "sweep.batches_retried"), 1u);
    EXPECT_EQ(counterOf(stats, "sweep.batches_failed"), 0u);
    expectSameResults(outcome.results, baseline, "retried");
}

TEST_F(RunnerTest, ExhaustedRetriesIsolateTheFailureFromSiblings)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    auto baseline =
        sweep::ParallelSweep(1, SweepKernel::Reference)
            .evaluate(suite, schemes, UpdateMode::Direct);

    RunnerOptions opts;
    opts.threads = 2;
    opts.kernel = SweepKernel::Reference;
    opts.maxRetries = 0; // every attempt is final
    opts.handleSignals = false;

    arm("sweep.worker_throw=3");
    obs::StatsRegistry stats;
    ResilientOutcome outcome;
    {
        obs::ScopedRegistry route(stats);
        outcome = ResilientRunner(opts).evaluate(suite, schemes,
                                                 UpdateMode::Direct);
    }
    // Exactly the faulted scheme failed; every sibling completed with
    // bit-identical results.
    EXPECT_FALSE(outcome.allCompleted());
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].schemeIndex, 3u);
    EXPECT_EQ(outcome.failures[0].kind, FailureKind::Exception);
    EXPECT_EQ(outcome.failures[0].message, "injected worker fault");
    EXPECT_EQ(outcome.failures[0].attempts, 1u);
    EXPECT_EQ(counterOf(stats, "sweep.batches_failed"), 1u);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        if (i == 3) {
            EXPECT_FALSE(outcome.completed[i]);
            continue;
        }
        ASSERT_TRUE(outcome.completed[i]) << i;
        expectSameConfusion(outcome.results[i].pooled,
                            baseline[i].pooled,
                            sweep::formatScheme(schemes[i]));
    }

    // Failed schemes stay out of the ranking (no default-constructed
    // confusions sneaking into a table).
    auto ranked =
        rankResults(outcome.results, sweep::RankBy::Pvp,
                    schemes.size(), suite.front().nNodes(),
                    &outcome.completed);
    EXPECT_EQ(ranked.size(), schemes.size() - 1);

    // And the structured failure report serializes.
    obs::Json arr = failuresJson(outcome.failures);
    ASSERT_EQ(arr.size(), 1u);
    EXPECT_EQ(arr.at(0).find("kind")->asString(), "exception");
    EXPECT_EQ(arr.at(0).find("scheme_index")->asUInt(), 3u);
}

TEST_F(RunnerTest, OversizedSchemesAreSkippedAndReported)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    // Tight budget: schemes above it are skipped, the rest evaluate.
    std::uint64_t budget = 1 << 10;
    std::size_t oversized = 0;
    for (const auto &s : schemes)
        if (sweep::schemeStateWords(s, suite.front().nNodes()) * 8 >
            budget)
            ++oversized;
    ASSERT_GE(oversized, 1u) << "space too small to exercise budget";
    ASSERT_LT(oversized, schemes.size());

    RunnerOptions opts;
    opts.threads = 2;
    opts.memBudgetBytes = budget;
    opts.handleSignals = false;

    obs::StatsRegistry stats;
    ResilientOutcome outcome;
    {
        obs::ScopedRegistry route(stats);
        outcome = ResilientRunner(opts).evaluate(suite, schemes,
                                                 UpdateMode::Direct);
    }
    EXPECT_EQ(outcome.failures.size(), oversized);
    EXPECT_EQ(counterOf(stats, "sweep.schemes_skipped_mem"),
              oversized);
    std::size_t completed = 0;
    for (std::uint8_t c : outcome.completed)
        completed += c;
    EXPECT_EQ(completed, schemes.size() - oversized);
    for (const auto &f : outcome.failures) {
        EXPECT_EQ(f.kind, FailureKind::MemBudget);
        EXPECT_EQ(f.attempts, 0u);
        EXPECT_FALSE(outcome.completed[f.schemeIndex]);
    }
}

TEST_F(RunnerTest, InjectedAdmissionFailureSkipsOneBatch)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    RunnerOptions opts;
    opts.threads = 1;
    opts.kernel = SweepKernel::Reference;
    opts.memBudgetBytes = 1 << 30; // roomy: only the fault can fail
    opts.handleSignals = false;

    arm("mem.alloc_fail=2");
    auto outcome = ResilientRunner(opts).evaluate(suite, schemes,
                                                  UpdateMode::Direct);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].schemeIndex, 2u);
    EXPECT_EQ(outcome.failures[0].kind, FailureKind::MemBudget);
    EXPECT_FALSE(outcome.completed[2]);
}

TEST_F(RunnerTest, InitialLivenessFlushWritesBeforeEvaluation)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    RunnerOptions opts;
    opts.threads = 1;
    opts.checkpointPath = ckptBase("liveness");
    // A huge interval suppresses every periodic write, so the counter
    // isolates the two deliberate ones: the pre-evaluation liveness
    // flush and the final flush.
    opts.checkpointIntervalSec = 1e9;
    opts.handleSignals = false;
    opts.initialLivenessFlush = true;

    obs::StatsRegistry stats;
    ResilientOutcome outcome;
    {
        obs::ScopedRegistry route(stats);
        outcome = ResilientRunner(opts).evaluate(suite, schemes,
                                                 UpdateMode::Direct);
    }
    EXPECT_TRUE(outcome.allCompleted());
    EXPECT_EQ(counterOf(stats, "sweep.checkpoints_written"), 2u);

    // The early empty write must not poison resume: the final flush
    // replaced it with the complete record.
    opts.resume = true;
    auto resumed = ResilientRunner(opts).evaluate(suite, schemes,
                                                  UpdateMode::Direct);
    EXPECT_TRUE(resumed.allCompleted());
    EXPECT_EQ(resumed.schemesResumed, schemes.size());
}

TEST_F(RunnerTest, TornCheckpointIsRejectedThenRegenerated)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    auto baseline =
        sweep::ParallelSweep(1, SweepKernel::Batched)
            .evaluate(suite, schemes, UpdateMode::Direct);

    RunnerOptions opts;
    opts.threads = 1;
    opts.checkpointPath = ckptBase("torn");
    // A huge interval leaves exactly ONE write — the final flush — so
    // the injected tear is not papered over by a later periodic write.
    opts.checkpointIntervalSec = 1e9;
    opts.handleSignals = false;

    // Run 1 completes, but its (only) checkpoint write is torn at 64
    // bytes — mid-header.
    arm("checkpoint.torn_write=64");
    auto first = ResilientRunner(opts).evaluate(suite, schemes,
                                                UpdateMode::Direct);
    EXPECT_TRUE(first.allCompleted());

    // Run 2 resumes: the torn file must be rejected (not trusted, not
    // fatal) and the sweep rerun from scratch to identical results,
    // leaving a fresh valid checkpoint behind.
    ::unsetenv("CCP_FAULT_INJECT");
    fault::reinit();
    opts.resume = true;
    obs::StatsRegistry stats;
    ResilientOutcome second;
    {
        obs::ScopedRegistry route(stats);
        second = ResilientRunner(opts).evaluate(suite, schemes,
                                                UpdateMode::Direct);
    }
    EXPECT_TRUE(second.allCompleted());
    EXPECT_EQ(second.schemesResumed, 0u);
    EXPECT_EQ(counterOf(stats, "sweep.checkpoints_rejected"), 1u);
    expectSameResults(second.results, baseline, "post-torn rerun");

    // Run 3: the regenerated checkpoint resumes everything.
    auto third = ResilientRunner(opts).evaluate(suite, schemes,
                                                UpdateMode::Direct);
    EXPECT_TRUE(third.allCompleted());
    EXPECT_EQ(third.schemesResumed, schemes.size());
    expectSameResults(third.results, baseline, "full resume");
}

TEST_F(RunnerTest, StaleCheckpointFromOtherSchemesNeverResumes)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    RunnerOptions opts;
    opts.threads = 1;
    opts.checkpointPath = ckptBase("stale");
    opts.checkpointIntervalSec = 0;
    opts.handleSignals = false;
    auto first = ResilientRunner(opts).evaluate(suite, schemes,
                                                UpdateMode::Direct);
    ASSERT_TRUE(first.allCompleted());

    // Same base path, different scheme list: the derived file name
    // (and the key inside) differ, so nothing resumes and the first
    // sweep's checkpoint is not clobbered.
    auto fewer = schemes;
    fewer.pop_back();
    opts.resume = true;
    auto other = ResilientRunner(opts).evaluate(suite, fewer,
                                                UpdateMode::Direct);
    EXPECT_TRUE(other.allCompleted());
    EXPECT_EQ(other.schemesResumed, 0u);
    EXPECT_NE(other.checkpointFile, first.checkpointFile);

    // The original sweep still resumes fully from its own file.
    auto again = ResilientRunner(opts).evaluate(suite, schemes,
                                                UpdateMode::Direct);
    EXPECT_EQ(again.schemesResumed, schemes.size());
}

} // namespace
