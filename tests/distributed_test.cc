/**
 * @file
 * Tests for DistributedPredictor: the paper's Figure 1 claim that
 * physically distributing a global predictor at the processors (pid
 * indexing) or directories (dir indexing) is behaviour-preserving.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hh"
#include "predict/distributed.hh"
#include "sweep/name.hh"

namespace {

using namespace ccp;
using predict::DistributedPredictor;
using predict::evaluateDistributed;
using predict::evaluateTrace;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::PredictorLocation;
using predict::SchemeSpec;
using predict::UpdateMode;
using trace::CoherenceEvent;
using trace::SharingTrace;

SharingTrace
randomTrace(std::uint64_t seed, int n_events = 3000)
{
    Rng rng(seed);
    SharingTrace tr("rand", 16);
    std::unordered_map<Addr, CoherenceEvent> last;
    for (int i = 0; i < n_events; ++i) {
        CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(rng.below(16));
        ev.pc = 0x400 + 4 * rng.below(32);
        ev.dir = static_cast<NodeId>(rng.below(16));
        ev.block = rng.below(256);
        std::uint64_t readers = rng() & 0xffff & ~(1ull << ev.pid);
        ev.readers = SharingBitmap(readers);
        auto it = last.find(ev.block);
        if (it != last.end()) {
            ev.invalidated = it->second.readers.minus(
                SharingBitmap::single(ev.pid));
            ev.prevWriterPid = it->second.pid;
            ev.prevWriterPc = it->second.pc;
            ev.hasPrevWriter = true;
        }
        last[ev.block] = ev;
        tr.append(ev);
    }
    return tr;
}

SchemeSpec
scheme(FunctionKind kind, unsigned depth, IndexSpec idx)
{
    return SchemeSpec{idx, kind, depth};
}

TEST(Distributed, RequiresTheLocationField)
{
    SchemeSpec no_pid = scheme(FunctionKind::Union, 1,
                               IndexSpec{false, 0, true, 4});
    EXPECT_EXIT(DistributedPredictor(no_pid,
                                     PredictorLocation::AtProcessors,
                                     16),
                ::testing::ExitedWithCode(1), "Table 1");

    SchemeSpec no_dir = scheme(FunctionKind::Union, 1,
                               IndexSpec{true, 4, false, 0});
    EXPECT_EXIT(DistributedPredictor(no_dir,
                                     PredictorLocation::AtDirectories,
                                     16),
                ::testing::ExitedWithCode(1), "Table 1");
}

TEST(Distributed, PartSchemeDropsTheLocationField)
{
    SchemeSpec global = scheme(FunctionKind::Inter, 2,
                               IndexSpec{true, 4, true, 6});
    DistributedPredictor at_proc(global,
                                 PredictorLocation::AtProcessors, 16);
    EXPECT_FALSE(at_proc.partScheme().index.usePid);
    EXPECT_TRUE(at_proc.partScheme().index.useDir);

    DistributedPredictor at_dir(global,
                                PredictorLocation::AtDirectories, 16);
    EXPECT_TRUE(at_dir.partScheme().index.usePid);
    EXPECT_FALSE(at_dir.partScheme().index.useDir);
}

TEST(Distributed, TotalCostEqualsGlobalCost)
{
    SchemeSpec global = scheme(FunctionKind::Union, 2,
                               IndexSpec{true, 2, true, 4});
    for (auto loc : {PredictorLocation::AtProcessors,
                     PredictorLocation::AtDirectories}) {
        DistributedPredictor dist(global, loc, 16);
        EXPECT_EQ(dist.sizeBits(), global.sizeBits(16));
        // N parts, each 1/N of the global table.
        EXPECT_EQ(dist.part(0).sizeBits(), global.sizeBits(16) / 16);
    }
}

/** The headline property: global == distributed, bit for bit. */
class DistributedEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DistributedEquivalenceTest, MatchesGlobalPredictorExactly)
{
    auto tr = randomTrace(GetParam());

    std::vector<SchemeSpec> schemes = {
        scheme(FunctionKind::Union, 1, IndexSpec{true, 0, false, 0}),
        scheme(FunctionKind::Union, 2, IndexSpec{true, 4, true, 4}),
        scheme(FunctionKind::Inter, 4, IndexSpec{true, 2, false, 6}),
        scheme(FunctionKind::PAs, 2, IndexSpec{true, 0, true, 2}),
        scheme(FunctionKind::OverlapLast, 1,
               IndexSpec{true, 4, false, 2}),
    };

    for (const auto &sch : schemes) {
        for (auto mode : {UpdateMode::Direct, UpdateMode::Forwarded,
                          UpdateMode::Ordered}) {
            auto global = evaluateTrace(tr, sch, mode);

            DistributedPredictor at_proc(
                sch, PredictorLocation::AtProcessors, 16);
            EXPECT_EQ(evaluateDistributed(tr, at_proc, mode), global)
                << sweep::formatScheme(sch) << " at processors";

            if (sch.index.useDir) {
                DistributedPredictor at_dir(
                    sch, PredictorLocation::AtDirectories, 16);
                EXPECT_EQ(evaluateDistributed(tr, at_dir, mode),
                          global)
                    << sweep::formatScheme(sch) << " at directories";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedEquivalenceTest,
                         ::testing::Values(1, 2, 3));

TEST(Distributed, RoutingIsolatesParts)
{
    SchemeSpec global = scheme(FunctionKind::Union, 1,
                               IndexSpec{true, 0, false, 0});
    DistributedPredictor dist(global, PredictorLocation::AtProcessors,
                              16);
    dist.update(3, 0, 0, 0, SharingBitmap(0b1000));
    EXPECT_EQ(dist.predict(3, 0, 0, 0).raw(), 0b1000u);
    // Other nodes' parts are untouched.
    for (NodeId pid = 0; pid < 16; ++pid) {
        if (pid != 3) {
            EXPECT_TRUE(dist.predict(pid, 0, 0, 0).empty());
        }
    }
}

TEST(Distributed, LocationNames)
{
    EXPECT_STREQ(predict::predictorLocationName(
                     PredictorLocation::AtProcessors),
                 "processors");
    EXPECT_STREQ(predict::predictorLocationName(
                     PredictorLocation::AtDirectories),
                 "directories");
}

} // namespace
