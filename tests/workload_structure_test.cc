/**
 * @file
 * Structural tests for the benchmark kernels: the calibration
 * assumptions in each kernel's design (who the readers are, which
 * blocks stay silent, what the static store sites look like) made
 * executable.  Runs at reduced scale.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>

#include "analysis/patterns.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;
using workloads::generateTrace;
using workloads::WorkloadParams;

WorkloadParams
smallParams(std::uint64_t seed = 9)
{
    WorkloadParams p;
    p.seed = seed;
    p.scale = 0.15;
    return p;
}

/** Readers of each event, keyed by writer node. */
std::map<NodeId, std::map<NodeId, std::uint64_t>>
readerMatrix(const trace::SharingTrace &tr)
{
    std::map<NodeId, std::map<NodeId, std::uint64_t>> m;
    for (const auto &ev : tr.events())
        for (NodeId r = 0; r < tr.nNodes(); ++r)
            if (ev.readers.test(r))
                ++m[ev.pid][r];
    return m;
}

TEST(GaussStructure, HaloReadersAreStripeNeighbours)
{
    auto tr = generateTrace("gauss", smallParams());
    auto m = readerMatrix(tr);
    // For every writer, the two dominant readers must be its stripe
    // neighbours (the wide coefficient table and strays add smaller
    // counts elsewhere).
    for (NodeId w = 1; w + 1 < 16; ++w) {
        const auto &row = m[w];
        std::uint64_t neighbour_reads = 0, total = 0;
        for (const auto &[r, count] : row) {
            total += count;
            if (r == w - 1 || r == w + 1)
                neighbour_reads += count;
        }
        ASSERT_GT(total, 0u) << "writer " << w;
        EXPECT_GT(neighbour_reads, total / 4) << "writer " << w;
    }
}

TEST(GaussStructure, CoefficientTableIsReadMachineWide)
{
    auto tr = generateTrace("gauss", smallParams());
    unsigned wide_events = 0;
    for (const auto &ev : tr.events())
        wide_events += ev.readers.popcount() >= 12;
    EXPECT_GT(wide_events, 500u);
}

TEST(Em3dStructure, ConsumersAreTheDesignatedPeers)
{
    auto tr = generateTrace("em3d", smallParams());
    auto m = readerMatrix(tr);
    // Each owner's consumers concentrate on its +1 and +3 peers.
    for (NodeId w = 0; w < 16; ++w) {
        const auto &row = m[w];
        std::uint64_t peer = 0, total = 0;
        for (const auto &[r, count] : row) {
            total += count;
            if (r == (w + 1) % 16 || r == (w + 3) % 16)
                peer += count;
        }
        if (total < 100)
            continue;
        EXPECT_GT(peer, total / 2) << "writer " << w;
    }
}

TEST(Em3dStructure, RebalanceZonesAlternateWriters)
{
    auto tr = generateTrace("em3d", smallParams());
    // Some blocks must be written by exactly two adjacent nodes.
    std::unordered_map<Addr, std::set<NodeId>> writers;
    for (const auto &ev : tr.events())
        writers[ev.block].insert(ev.pid);
    unsigned alternating = 0;
    for (const auto &[block, ws] : writers) {
        if (ws.size() == 2) {
            auto it = ws.begin();
            NodeId a = *it++, b = *it;
            alternating += (b == (a + 1) % 16) || (a == (b + 1) % 16);
        }
    }
    EXPECT_GT(alternating, 200u);
}

TEST(Mp3dStructure, RecordsMigrateBetweenAdjacentSlabs)
{
    auto tr = generateTrace("mp3d", smallParams());
    // Consecutive writers of a molecule block are adjacent slabs
    // (straight-line flight): verify on the prev-writer links.
    std::uint64_t adjacent = 0, handoffs = 0;
    for (const auto &ev : tr.events()) {
        if (!ev.hasPrevWriter || ev.prevWriterPid == ev.pid)
            continue;
        ++handoffs;
        NodeId d = (ev.pid + 16 - ev.prevWriterPid) % 16;
        adjacent += d == 1 || d == 15;
    }
    ASSERT_GT(handoffs, 1000u);
    EXPECT_GT(adjacent, handoffs * 9 / 10);
}

TEST(WaterStructure, PositionsAreReadByTheWindowOwners)
{
    auto tr = generateTrace("water", smallParams());
    // Position events: versions with >= 5 readers; their readers
    // must be the owners preceding the molecule in the ring.
    unsigned wide = 0;
    for (const auto &ev : tr.events()) {
        if (ev.readers.popcount() < 5)
            continue;
        ++wide;
        // The window spans half the ring: owner+9 .. owner+15 read
        // (modulo), owner+1..owner+7 mostly do not.
        unsigned behind = 0;
        for (unsigned k = 9; k <= 15; ++k)
            behind += ev.readers.test((ev.pid + k) % 16);
        EXPECT_GE(behind, 4u);
    }
    EXPECT_GT(wide, 500u);
}

TEST(OceanStructure, BoundaryRowsHaveOneStableReader)
{
    auto tr = generateTrace("ocean", smallParams());
    // Events with exactly one reader dominate the shared events, and
    // that reader is an adjacent stripe owner for the vast majority.
    std::uint64_t one = 0, adjacent = 0, more = 0;
    for (const auto &ev : tr.events()) {
        unsigned n = ev.readers.popcount();
        if (n == 1) {
            ++one;
            for (NodeId r = 0; r < 16; ++r) {
                if (!ev.readers.test(r))
                    continue;
                NodeId d = (r + 16 - ev.pid) % 16;
                adjacent += d == 1 || d == 15;
            }
        } else if (n > 1) {
            ++more;
        }
    }
    EXPECT_GT(one, 10 * more);
    EXPECT_GT(adjacent, one * 3 / 5);
}

TEST(UnstructStructure, FrontierVerticesHaveStableGatherSets)
{
    auto tr = generateTrace("unstruct", smallParams());
    // For data blocks with many events, the union of observed reader
    // sets should be small (a fixed set of cut owners), i.e. the
    // per-block reader universe is far below 16.
    std::unordered_map<Addr, std::pair<std::uint64_t, unsigned>> acc;
    for (const auto &ev : tr.events()) {
        auto &[mask, count] = acc[ev.block];
        mask |= ev.readers.raw();
        ++count;
    }
    unsigned busy = 0;
    double universe = 0;
    for (const auto &[block, mc] : acc) {
        if (mc.second < 20)
            continue;
        ++busy;
        universe += SharingBitmap(mc.first).popcount();
    }
    ASSERT_GT(busy, 100u);
    EXPECT_LT(universe / busy, 9.0);
}

TEST(BarnesStructure, TreeTopIsSharedMachineWide)
{
    auto tr = generateTrace("barnes", smallParams());
    auto a = analysis::analyzeTrace(tr);
    // Wide-shared blocks exist (top tree cells) but are a small
    // minority of blocks.
    auto wide = a.blocks[std::size_t(
        analysis::SharingPattern::WideShared)];
    EXPECT_GT(wide, 8u);
    EXPECT_LT(wide, a.totalBlocks() / 10);
}

TEST(AllKernelsStructure, EveryNodeWritesAndReads)
{
    // Load balance sanity: every node both produces events and
    // appears as a reader somewhere.
    for (const auto &name : workloads::workloadNames()) {
        auto tr = generateTrace(name, smallParams());
        SharingBitmap writers, readers;
        for (const auto &ev : tr.events()) {
            writers.set(ev.pid);
            readers |= ev.readers;
        }
        EXPECT_EQ(writers.popcount(), 16u) << name;
        EXPECT_EQ(readers.popcount(), 16u) << name;
    }
}

TEST(AllKernelsStructure, FeedbackNeverContainsTheWriter)
{
    for (const auto &name : workloads::workloadNames()) {
        auto tr = generateTrace(name, smallParams());
        for (const auto &ev : tr.events())
            ASSERT_FALSE(ev.invalidated.test(ev.pid)) << name;
    }
}

} // namespace
