/**
 * @file
 * Reproduces Figure 6: intersection prediction (history depth 2,
 * 16-bit max index) under direct, forwarded, and ordered update.
 * Expected shape: PVP curve above sensitivity; pid indexing lifts
 * both; pc-only indexing is poor.
 */

#include "figure_common.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    benchutil::BenchContext ctx("fig6_intersection", argc, argv);
    return benchutil::runFigure(
        ctx, "Figure 6: intersection prediction, depth 2, 16-bit max index",
        predict::FunctionKind::Inter, 2, sweep::figureIndexSeries16());
}
