/**
 * @file
 * Reproduces Table 7: schemes reported by earlier work (the zero-cost
 * baseline last-bitmap predictor, Kaxiras & Goodman's instruction
 * last/intersection predictors, and Lai & Falsafi's address+pid last
 * predictor) under direct and forwarded update.
 *
 * Expected shape: baseline sensitivity ~= PVP ~= 0.6; the
 * intersection scheme trades sensitivity for distinctly higher PVP;
 * forwarded update changes little for these shallow schemes.
 */

#include "bench_util.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("table7_prior_schemes", argc, argv);
    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    std::printf("Table 7: schemes reported by earlier work\n\n");
    Table t({"update", "description", "scheme", "size", "sens",
             "paper", "pvp", "paper"});

    // Parse every row up front and evaluate each update mode as one
    // sharded batch.
    std::vector<predict::SchemeSpec> direct_specs, forwarded_specs;
    for (const auto &row : paperTable7()) {
        auto parsed = sweep::parseScheme(row.scheme);
        if (!parsed) {
            std::fprintf(stderr, "bad scheme %s\n", row.scheme);
            return 1;
        }
        (std::string(row.update) == "direct" ? direct_specs
                                             : forwarded_specs)
            .push_back(parsed->scheme);
    }
    auto direct_res = evaluateAllOrExit(
        ctx, suite, direct_specs, predict::UpdateMode::Direct);
    auto forwarded_res = evaluateAllOrExit(
        ctx, suite, forwarded_specs, predict::UpdateMode::Forwarded);

    obs::Json &rows = ctx.results()["schemes"];
    rows = obs::Json::array();
    std::size_t di = 0, fi = 0;
    for (const auto &row : paperTable7()) {
        bool direct = std::string(row.update) == "direct";
        const auto &res =
            direct ? direct_res[di++] : forwarded_res[fi++];
        t.addRow({row.update, row.description, row.scheme,
                  std::to_string(row.sizeLog2),
                  fmt(res.avgSensitivity()), fmt(row.sensitivity),
                  fmt(res.avgPvp()), fmt(row.pvp)});
        obs::Json entry = suiteResultJson(res);
        entry["description"] = obs::Json(row.description);
        entry["paper_sensitivity"] = obs::Json(row.sensitivity);
        entry["paper_pvp"] = obs::Json(row.pvp);
        rows.append(std::move(entry));
    }
    t.print();

    // Shape check: inter trades sensitivity for PVP vs the lasts.
    auto last = sweep::parseScheme("last(pid+pc8)1")->scheme;
    auto inter = sweep::parseScheme("inter(pid+pc8)2")->scheme;
    auto rl = predict::evaluateSuite(suite, last,
                                     predict::UpdateMode::Direct);
    auto ri = predict::evaluateSuite(suite, inter,
                                     predict::UpdateMode::Direct);
    std::printf("\nShape checks:\n");
    std::printf("  inter PVP > last PVP:                 %s "
                "(%.2f vs %.2f)\n",
                ri.avgPvp() > rl.avgPvp() ? "yes" : "NO", ri.avgPvp(),
                rl.avgPvp());
    std::printf("  inter sensitivity < last sensitivity: %s "
                "(%.2f vs %.2f)\n",
                ri.avgSensitivity() < rl.avgSensitivity() ? "yes" : "NO",
                ri.avgSensitivity(), rl.avgSensitivity());
    return ctx.finish();
}
