/**
 * @file
 * Reproduces Table 10: the ten most sensitive schemes under direct
 * update.  Expected shape: all maximum-depth union schemes with
 * comparable sensitivity but varied PVP; cheap dir+addr unions rank
 * remarkably well.
 */

#include "topten_common.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    benchutil::BenchContext ctx("table10_top_sens_direct", argc, argv,
                                benchutil::Sharding::Supported);
    return benchutil::runTopTen(
        ctx, "Table 10: top 10 sensitivity, direct update",
        predict::UpdateMode::Direct, sweep::RankBy::Sensitivity,
        benchutil::paperTable10());
}
