/**
 * @file
 * Reproduces Table 10: the ten most sensitive schemes under direct
 * update.  Expected shape: all maximum-depth union schemes with
 * comparable sensitivity but varied PVP; cheap dir+addr unions rank
 * remarkably well.
 */

#include "topten_common.hh"

int
main()
{
    using namespace ccp;
    return benchutil::runTopTen(
        "Table 10: top 10 sensitivity, direct update",
        predict::UpdateMode::Direct, sweep::RankBy::Sensitivity,
        benchutil::paperTable10());
}
