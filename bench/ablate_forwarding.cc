/**
 * @file
 * Ablation A3 (DESIGN.md): the data-forwarding overlay across the
 * sensitivity/PVP frontier.  Turns the paper's concluding bandwidth-
 * latency discussion into numbers: cycles saved versus torus traffic
 * injected, per scheme, pooled over the whole suite.
 */

#include "bench_util.hh"
#include "forward/forwarding.hh"
#include "sweep/name.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("ablate_forwarding", argc, argv);

    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    const char *schemes[] = {
        "inter(pid+add6)4",    // sure bets
        "inter(pid+pc8)2",
        "last()1",             // zero-cost baseline
        "last(pid+add8)1",
        "union(pid+dir+add4)2",
        "union(dir+add14)4",   // aggressive
    };

    std::printf("Ablation: forwarding cost/benefit across the "
                "sens/PVP frontier\n"
                "(pooled over the seven-benchmark suite, direct "
                "update, 85%% timely forwards)\n\n");

    Table t({"scheme", "sens", "pvp", "Mcycles-saved", "fwd-MB",
             "MBhops", "MBh/Mcyc"});
    for (const char *text : schemes) {
        auto parsed = sweep::parseScheme(text);
        if (!parsed)
            return 1;
        forward::ForwardingResult pooled;
        for (const auto &tr : suite) {
            auto res = forward::simulateForwarding(
                tr, parsed->scheme, predict::UpdateMode::Direct);
            pooled.events += res.events;
            pooled.forwardsSent += res.forwardsSent;
            pooled.usefulForwards += res.usefulForwards;
            pooled.wastedForwards += res.wastedForwards;
            pooled.missedReaders += res.missedReaders;
            pooled.missesAvoided += res.missesAvoided;
            pooled.cyclesSaved += res.cyclesSaved;
            pooled.forwardBytes += res.forwardBytes;
            pooled.forwardByteHops += res.forwardByteHops;
            pooled.bytesSaved += res.bytesSaved;
        }
        t.addRow({text, fmt(pooled.sensitivity(), 3),
                  fmt(pooled.pvp(), 3), fmt(pooled.cyclesSaved / 1e6),
                  fmt(pooled.forwardBytes / 1e6),
                  fmt(pooled.forwardByteHops / 1e6),
                  fmt(pooled.byteHopsPerCycleSaved(), 3)});
    }
    t.print();

    std::printf(
        "\nExpected: moving from intersection to deep union increases "
        "both cycles saved (sensitivity) and traffic\n"
        "(lower PVP); the MBh/Mcyc column prices each scheme's "
        "bandwidth per unit of latency hidden.\n");
    return ctx.finish();
}
