/**
 * @file
 * Reproduces Table 8: the ten highest-PVP schemes under direct
 * update.  Expected shape: all deep-history intersection schemes,
 * all pid-indexed, PVP far above sensitivity.
 */

#include "topten_common.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    benchutil::BenchContext ctx("table8_top_pvp_direct", argc, argv,
                                benchutil::Sharding::Supported);
    return benchutil::runTopTen(
        ctx, "Table 8: top 10 PVP, direct update",
        predict::UpdateMode::Direct, sweep::RankBy::Pvp,
        benchutil::paperTable8());
}
