/**
 * @file
 * Reproduces Table 8: the ten highest-PVP schemes under direct
 * update.  Expected shape: all deep-history intersection schemes,
 * all pid-indexed, PVP far above sensitivity.
 */

#include "topten_common.hh"

int
main()
{
    using namespace ccp;
    return benchutil::runTopTen(
        "Table 8: top 10 PVP, direct update",
        predict::UpdateMode::Direct, sweep::RankBy::Pvp,
        benchutil::paperTable8());
}
