/**
 * @file
 * Reproduces Table 6: prevalence of sharing.
 *
 * Expected shape versus the paper: prevalence is low everywhere (a
 * few percent — far below the ~65% taken-bias of branches), barnes
 * and unstruct are the most-shared traces, ocean and em3d the least,
 * and the suite average sits near the paper's 9.19%.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("table6_prevalence", argc, argv);
    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    std::printf("Table 6: prevalence of sharing\n");
    std::printf("(decisions = nodes x store misses; prevalence = "
                "events/decisions)\n\n");

    Table t({"benchmark", "events", "decisions", "prevalence%",
             "paper%"});
    double avg = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &tr = suite[i];
        const auto &ref = paperTable6()[i];
        t.addRow({tr.name(), fmtU(tr.sharingEvents()),
                  fmtU(tr.decisions()), fmt(100.0 * tr.prevalence()),
                  fmt(ref.prevalencePct)});
        avg += tr.prevalence();
    }
    avg /= static_cast<double>(suite.size());
    t.print();

    std::printf("\naverage prevalence: %.2f%% (paper: 9.19%%)\n",
                100.0 * avg);
    std::printf("equivalent degree of sharing: %.2f readers/write "
                "(paper: 1.5)\n",
                16.0 * avg);

    auto prev = [&](const char *name) {
        for (const auto &tr : suite)
            if (tr.name() == name)
                return tr.prevalence();
        return 0.0;
    };
    std::printf("\nShape checks:\n");
    std::printf("  ocean and em3d least shared:   %s\n",
                (prev("ocean") < prev("gauss") &&
                 prev("ocean") < prev("mp3d") &&
                 prev("em3d") < prev("gauss") &&
                 prev("em3d") < prev("mp3d"))
                    ? "yes"
                    : "NO");
    std::printf("  barnes/unstruct most shared:   %s\n",
                (prev("barnes") > prev("mp3d") &&
                 prev("unstruct") > prev("mp3d"))
                    ? "yes"
                    : "NO");

    obs::Json &results = ctx.results();
    results["avg_prevalence"] = obs::Json(avg);
    results["equivalent_readers_per_write"] = obs::Json(16.0 * avg);
    return ctx.finish();
}
