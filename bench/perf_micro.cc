/**
 * @file
 * Microbenchmarks (google-benchmark) of the library itself: predictor
 * lookup/update throughput per function family, full-trace evaluation
 * rate, protocol-engine op rate, and torus accounting — the numbers
 * that bound how large a design-space sweep is practical.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/rng.hh"
#include "mem/protocol.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;

/** A reusable synthetic trace with realistic low prevalence. */
const trace::SharingTrace &
syntheticTrace()
{
    static const trace::SharingTrace tr = [] {
        trace::SharingTrace t("synthetic", 16);
        Rng rng(1);
        std::vector<trace::CoherenceEvent> last(4096);
        std::vector<bool> seen(4096, false);
        for (int i = 0; i < 200000; ++i) {
            trace::CoherenceEvent ev;
            ev.block = rng.below(4096);
            ev.pid = static_cast<NodeId>(rng.below(16));
            ev.pc = 0x400 + 4 * rng.below(64);
            ev.dir = static_cast<NodeId>(ev.block % 16);
            std::uint64_t readers = 0;
            // ~1.5 readers per event on average.
            while (rng.chance(0.6))
                readers |= 1ull << rng.below(16);
            readers &= ~(1ull << ev.pid);
            ev.readers = SharingBitmap(readers);
            if (seen[ev.block]) {
                ev.invalidated = last[ev.block].readers;
                ev.prevWriterPid = last[ev.block].pid;
                ev.prevWriterPc = last[ev.block].pc;
                ev.hasPrevWriter = true;
            }
            seen[ev.block] = true;
            last[ev.block] = ev;
            t.append(ev);
        }
        return t;
    }();
    return tr;
}

predict::SchemeSpec
schemeOf(const char *text)
{
    auto parsed = sweep::parseScheme(text);
    if (!parsed)
        std::abort();
    return parsed->scheme;
}

void
BM_TablePredictUpdate(benchmark::State &state, const char *text)
{
    auto scheme = schemeOf(text);
    auto table = scheme.makeTable(16);
    Rng rng(2);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        NodeId pid = static_cast<NodeId>(rng.below(16));
        Pc pc = 0x400 + 4 * rng.below(64);
        Addr block = rng.below(4096);
        auto pred = table.predict(pid, pc, block % 16, block);
        benchmark::DoNotOptimize(pred);
        table.update(pid, pc, block % 16, block,
                     SharingBitmap(rng() & 0xffff));
        ++ops;
    }
    state.SetItemsProcessed(ops);
}

BENCHMARK_CAPTURE(BM_TablePredictUpdate, last, "last(pid+add8)1");
BENCHMARK_CAPTURE(BM_TablePredictUpdate, union4, "union(dir+add12)4");
BENCHMARK_CAPTURE(BM_TablePredictUpdate, inter4, "inter(pid+pc4+add6)4");
BENCHMARK_CAPTURE(BM_TablePredictUpdate, pas2, "pas(pid+add4)2");

void
BM_EvaluateTrace(benchmark::State &state, const char *text,
                 int mode_int)
{
    const auto &tr = syntheticTrace();
    auto scheme = schemeOf(text);
    auto table = scheme.makeTable(16);
    auto mode = static_cast<predict::UpdateMode>(mode_int);
    for (auto _ : state) {
        auto conf = predict::evaluateTrace(tr, table, mode);
        benchmark::DoNotOptimize(conf);
    }
    state.SetItemsProcessed(state.iterations() * tr.events().size());
}

BENCHMARK_CAPTURE(BM_EvaluateTrace, union2_direct,
                  "union(pid+dir+add4)2", 0);
BENCHMARK_CAPTURE(BM_EvaluateTrace, inter4_forwarded,
                  "inter(pid+pc4+add6)4", 1);
BENCHMARK_CAPTURE(BM_EvaluateTrace, union1_ordered, "last(pid+add8)1",
                  2);
BENCHMARK_CAPTURE(BM_EvaluateTrace, pas2_direct, "pas(pid+add4)2", 0);

void
BM_ProtocolOps(benchmark::State &state)
{
    mem::MachineConfig cfg;
    trace::SharingTrace tr("bm", 16);
    mem::CoherenceController ctl(cfg, &tr);
    Rng rng(3);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        NodeId node = static_cast<NodeId>(rng.below(16));
        Addr addr = blockBase(rng.below(1 << 14));
        if (rng.chance(0.3))
            ctl.write(node, addr, 0x400 + 4 * rng.below(32));
        else
            ctl.read(node, addr);
        ++ops;
    }
    state.SetItemsProcessed(ops);
}

BENCHMARK(BM_ProtocolOps);

void
BM_TraceSaveFile(benchmark::State &state)
{
    const auto &tr = syntheticTrace();
    const std::string path = "/tmp/ccp_perf_micro.trace";
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        tr.saveFile(path);
        bytes += 64 + 104 + tr.events().size() * 64;
    }
    state.SetBytesProcessed(bytes);
    std::remove(path.c_str());
}

BENCHMARK(BM_TraceSaveFile)->Unit(benchmark::kMillisecond);

void
BM_TraceLoadFile(benchmark::State &state, bool mapped)
{
    const std::string path = "/tmp/ccp_perf_micro_load.trace";
    syntheticTrace().saveFile(path);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        trace::SharingTrace tr;
        bool ok = mapped ? tr.loadFileMapped(path)
                         : tr.loadFileStream(path);
        benchmark::DoNotOptimize(ok);
        bytes += 64 + 104 + tr.events().size() * 64;
    }
    state.SetBytesProcessed(bytes);
    std::remove(path.c_str());
}

BENCHMARK_CAPTURE(BM_TraceLoadFile, stream, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TraceLoadFile, mmap, true)
    ->Unit(benchmark::kMillisecond);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    workloads::WorkloadParams params;
    params.scale = 0.05;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        auto tr = workloads::generateTrace("mp3d", params);
        ops += tr.meta().totalOps;
        benchmark::DoNotOptimize(tr);
    }
    state.SetItemsProcessed(ops);
}

BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

void
BM_TorusMessage(benchmark::State &state)
{
    net::Torus2D torus(4, 4);
    Rng rng(4);
    for (auto _ : state) {
        auto hops = torus.sendMessage(
            static_cast<NodeId>(rng.below(16)),
            static_cast<NodeId>(rng.below(16)), 72);
        benchmark::DoNotOptimize(hops);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_TorusMessage);

} // namespace

BENCHMARK_MAIN();
