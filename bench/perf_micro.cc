/**
 * @file
 * Microbenchmarks (google-benchmark) of the library itself: predictor
 * lookup/update throughput per function family, full-trace evaluation
 * rate, protocol-engine op rate, and torus accounting — the numbers
 * that bound how large a design-space sweep is practical.
 *
 * After the registered benchmarks, main() runs the sweep-kernel perf
 * gate: the event-major batched kernel, the SIMD/SoA lane kernel, and
 * the reference per-scheme evaluator over the standard 16-node sweep
 * fixture (48 window schemes x the 200k-event synthetic trace),
 * writing the measured rates to BENCH_sweep.json (override with
 * CCP_BENCH_JSON) and exiting non-zero if the batched kernel is
 * slower than the reference — or, on an AVX2 host, if the SIMD
 * kernel is slower than batched.  Pass --benchmark_filter='^$' to
 * run only the gate.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "mem/protocol.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "predict/evaluator.hh"
#include "sweep/batch.hh"
#include "sweep/name.hh"
#include "sweep/parallel.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;

/** A reusable synthetic trace with realistic low prevalence. */
const trace::SharingTrace &
syntheticTrace()
{
    static const trace::SharingTrace tr = [] {
        trace::SharingTrace t("synthetic", 16);
        Rng rng(1);
        std::vector<trace::CoherenceEvent> last(4096);
        std::vector<bool> seen(4096, false);
        for (int i = 0; i < 200000; ++i) {
            trace::CoherenceEvent ev;
            ev.block = rng.below(4096);
            ev.pid = static_cast<NodeId>(rng.below(16));
            ev.pc = 0x400 + 4 * rng.below(64);
            ev.dir = static_cast<NodeId>(ev.block % 16);
            std::uint64_t readers = 0;
            // ~1.5 readers per event on average.
            while (rng.chance(0.6))
                readers |= 1ull << rng.below(16);
            readers &= ~(1ull << ev.pid);
            ev.readers = SharingBitmap(readers);
            if (seen[ev.block]) {
                ev.invalidated = last[ev.block].readers;
                ev.prevWriterPid = last[ev.block].pid;
                ev.prevWriterPc = last[ev.block].pc;
                ev.hasPrevWriter = true;
            }
            seen[ev.block] = true;
            last[ev.block] = ev;
            t.append(ev);
        }
        return t;
    }();
    return tr;
}

predict::SchemeSpec
schemeOf(const char *text)
{
    auto parsed = sweep::parseScheme(text);
    if (!parsed)
        std::abort();
    return parsed->scheme;
}

void
BM_TablePredictUpdate(benchmark::State &state, const char *text)
{
    auto scheme = schemeOf(text);
    auto table = scheme.makeTable(16);
    Rng rng(2);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        NodeId pid = static_cast<NodeId>(rng.below(16));
        Pc pc = 0x400 + 4 * rng.below(64);
        Addr block = rng.below(4096);
        auto pred = table.predict(pid, pc, block % 16, block);
        benchmark::DoNotOptimize(pred);
        table.update(pid, pc, block % 16, block,
                     SharingBitmap(rng() & 0xffff));
        ++ops;
    }
    state.SetItemsProcessed(ops);
}

BENCHMARK_CAPTURE(BM_TablePredictUpdate, last, "last(pid+add8)1");
BENCHMARK_CAPTURE(BM_TablePredictUpdate, union4, "union(dir+add12)4");
BENCHMARK_CAPTURE(BM_TablePredictUpdate, inter4, "inter(pid+pc4+add6)4");
BENCHMARK_CAPTURE(BM_TablePredictUpdate, pas2, "pas(pid+add4)2");

void
BM_EvaluateTrace(benchmark::State &state, const char *text,
                 int mode_int)
{
    const auto &tr = syntheticTrace();
    auto scheme = schemeOf(text);
    auto table = scheme.makeTable(16);
    auto mode = static_cast<predict::UpdateMode>(mode_int);
    for (auto _ : state) {
        auto conf = predict::evaluateTrace(tr, table, mode);
        benchmark::DoNotOptimize(conf);
    }
    state.SetItemsProcessed(state.iterations() * tr.events().size());
}

BENCHMARK_CAPTURE(BM_EvaluateTrace, union2_direct,
                  "union(pid+dir+add4)2", 0);
BENCHMARK_CAPTURE(BM_EvaluateTrace, inter4_forwarded,
                  "inter(pid+pc4+add6)4", 1);
BENCHMARK_CAPTURE(BM_EvaluateTrace, union1_ordered, "last(pid+add8)1",
                  2);
BENCHMARK_CAPTURE(BM_EvaluateTrace, pas2_direct, "pas(pid+add4)2", 0);

/**
 * The standard 16-node sweep fixture: 48 window schemes (the families
 * that dominate the enumerated design space) over the synthetic
 * trace.  Both kernels are benchmarked — and gated — on exactly this
 * batch.
 */
std::vector<predict::SchemeSpec>
sweepFixture()
{
    const char *shapes[] = {"add8",     "add12",        "dir+add8",
                            "pid+add8", "pc8",          "pid+pc8",
                            "pc4+add6", "pid+pc4+add6"};
    std::vector<predict::SchemeSpec> schemes;
    for (const char *fn : {"union", "inter"}) {
        for (unsigned depth : {1u, 2u, 4u}) {
            for (const char *shape : shapes)
                schemes.push_back(
                    schemeOf((std::string(fn) + "(" + shape + ")" +
                              std::to_string(depth))
                                 .c_str()));
        }
    }
    return schemes;
}

/** The learned-family fixture: 12 perceptron schemes across the same
 *  index shapes, hashed and unhashed, with and without the Bloom
 *  negative filter. */
std::vector<predict::SchemeSpec>
perceptronFixture()
{
    const char *names[] = {
        "perceptron(hash:pc8)2w5t2",
        "perceptron(hash:add8)2w5t2",
        "perceptron(hash:pc4+add6)2w5t2b16",
        "perceptron(hash:pid+pc8)4w5t2",
        "perceptron(hash:dir+add8)4w5t2b16",
        "perceptron(hash:pid+pc4+add6)4w6t4",
        "perceptron(pc8)2w5t2",
        "perceptron(add8)2w5t2b8",
        "perceptron(pc4+add6)4w4t1",
        "perceptron(pid+add8)4w5t2",
        "perceptron(dir+add8)2w8t6b32",
        "perceptron(pid+pc4+add6)2w5t2b16",
    };
    std::vector<predict::SchemeSpec> schemes;
    for (const char *n : names)
        schemes.push_back(schemeOf(n));
    return schemes;
}

void
BM_BatchedSweepFixture(benchmark::State &state, int mode_int)
{
    const auto &tr = syntheticTrace();
    auto schemes = sweepFixture();
    sweep::BatchEvaluator batch(schemes, tr.nNodes());
    auto mode = static_cast<predict::UpdateMode>(mode_int);
    for (auto _ : state) {
        auto res = batch.evaluateTrace(tr, mode);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * tr.events().size() *
                            schemes.size());
}

BENCHMARK_CAPTURE(BM_BatchedSweepFixture, direct, 0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchedSweepFixture, ordered, 2)
    ->Unit(benchmark::kMillisecond);

void
BM_ReferenceSweepFixture(benchmark::State &state, int mode_int)
{
    const auto &tr = syntheticTrace();
    auto schemes = sweepFixture();
    auto mode = static_cast<predict::UpdateMode>(mode_int);
    for (auto _ : state) {
        for (const auto &scheme : schemes) {
            auto conf = predict::evaluateTrace(tr, scheme, mode);
            benchmark::DoNotOptimize(conf);
        }
    }
    state.SetItemsProcessed(state.iterations() * tr.events().size() *
                            schemes.size());
}

BENCHMARK_CAPTURE(BM_ReferenceSweepFixture, direct, 0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReferenceSweepFixture, ordered, 2)
    ->Unit(benchmark::kMillisecond);

void
BM_ProtocolOps(benchmark::State &state)
{
    mem::MachineConfig cfg;
    trace::SharingTrace tr("bm", 16);
    mem::CoherenceController ctl(cfg, &tr);
    Rng rng(3);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        NodeId node = static_cast<NodeId>(rng.below(16));
        Addr addr = blockBase(rng.below(1 << 14));
        if (rng.chance(0.3))
            ctl.write(node, addr, 0x400 + 4 * rng.below(32));
        else
            ctl.read(node, addr);
        ++ops;
    }
    state.SetItemsProcessed(ops);
}

BENCHMARK(BM_ProtocolOps);

void
BM_TraceSaveFile(benchmark::State &state)
{
    const auto &tr = syntheticTrace();
    const std::string path = "/tmp/ccp_perf_micro.trace";
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        tr.saveFile(path);
        bytes += 64 + 104 + tr.events().size() * 64;
    }
    state.SetBytesProcessed(bytes);
    std::remove(path.c_str());
}

BENCHMARK(BM_TraceSaveFile)->Unit(benchmark::kMillisecond);

void
BM_TraceLoadFile(benchmark::State &state, bool mapped)
{
    const std::string path = "/tmp/ccp_perf_micro_load.trace";
    syntheticTrace().saveFile(path);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        trace::SharingTrace tr;
        bool ok = mapped ? tr.loadFileMapped(path)
                         : tr.loadFileStream(path);
        benchmark::DoNotOptimize(ok);
        bytes += 64 + 104 + tr.events().size() * 64;
    }
    state.SetBytesProcessed(bytes);
    std::remove(path.c_str());
}

BENCHMARK_CAPTURE(BM_TraceLoadFile, stream, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TraceLoadFile, mmap, true)
    ->Unit(benchmark::kMillisecond);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    workloads::WorkloadParams params;
    params.scale = 0.05;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        auto tr = workloads::generateTrace("mp3d", params);
        ops += tr.meta().totalOps;
        benchmark::DoNotOptimize(tr);
    }
    state.SetItemsProcessed(ops);
}

BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

void
BM_TorusMessage(benchmark::State &state)
{
    net::Torus2D torus(4, 4);
    Rng rng(4);
    for (auto _ : state) {
        auto hops = torus.sendMessage(
            static_cast<NodeId>(rng.below(16)),
            static_cast<NodeId>(rng.below(16)), 72);
        benchmark::DoNotOptimize(hops);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_TorusMessage);

// ---------------------------------------------------------------------
// Sweep-kernel perf gate

/** Trim trailing whitespace/newlines in place. */
std::string
rstrip(std::string s)
{
    while (!s.empty() &&
           (s.back() == '\n' || s.back() == '\r' || s.back() == ' '))
        s.pop_back();
    return s;
}

/** The commit this binary measures: CCP_GIT_SHA (CI sets it from the
 *  checkout) or `git rev-parse HEAD`, else "unknown". */
std::string
gitSha()
{
    if (const char *env = std::getenv("CCP_GIT_SHA"))
        return rstrip(env);
    std::string sha;
    if (FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[128];
        if (std::fgets(buf, sizeof(buf), p))
            sha = rstrip(buf);
        ::pclose(p);
    }
    return sha.empty() ? "unknown" : sha;
}

/** ISO-8601 UTC timestamp of this run, e.g. "2026-08-08T12:34:56Z". */
std::string
isoUtcNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm = {};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/** Host CPU model from /proc/cpuinfo (Linux), else "unknown". */
std::string
cpuModel()
{
    std::ifstream is("/proc/cpuinfo");
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("model name", 0) != 0)
            continue;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            break;
        std::size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start == std::string::npos)
            break;
        return rstrip(line.substr(start));
    }
    return "unknown";
}

/** Wall-clock best-of-@p reps for one sweep over the fixture. */
template <typename Fn>
double
bestOf(unsigned reps, Fn &&fn)
{
    double best = 0;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (r == 0 || dt.count() < best)
            best = dt.count();
    }
    return best;
}

/**
 * Run both kernels over the standard sweep fixture, write the perf
 * record, and gate: the batched kernel must not be slower than the
 * reference.  @return the process exit code.
 */
int
runSweepGate()
{
    const auto &tr = syntheticTrace();
    auto schemes = sweepFixture();
    std::vector<trace::SharingTrace> suite;
    suite.push_back(tr);
    const auto mode = predict::UpdateMode::Direct;
    const double scheme_events =
        double(tr.events().size()) * double(schemes.size());
    const unsigned reps = 3;
    const unsigned mt_threads = ThreadPool::defaultThreads();

    std::fprintf(stderr,
                 "[gate] sweep fixture: %zu schemes x %zu events, "
                 "%u nodes, direct update\n",
                 schemes.size(), tr.events().size(), tr.nNodes());

    std::vector<predict::SuiteResult> ref_results, batched_results,
        simd_results;
    double ref_sec = bestOf(reps, [&] {
        ref_results =
            sweep::ParallelSweep(1, sweep::SweepKernel::Reference)
                .evaluate(suite, schemes, mode);
    });
    double batched_sec = bestOf(reps, [&] {
        batched_results =
            sweep::ParallelSweep(1, sweep::SweepKernel::Batched)
                .evaluate(suite, schemes, mode);
    });
    double simd_sec = bestOf(reps, [&] {
        simd_results =
            sweep::ParallelSweep(1, sweep::SweepKernel::Simd)
                .evaluate(suite, schemes, mode);
    });
    double mt_sec = bestOf(reps, [&] {
        auto res =
            sweep::ParallelSweep(mt_threads,
                                 sweep::SweepKernel::Batched)
                .evaluate(suite, schemes, mode);
        benchmark::DoNotOptimize(res);
    });

    // Tracing overhead: the same single-thread batched sweep with
    // span recording live.  batched_sec above already measures the
    // disabled path (instrumentation compiled in, tracing off), so
    // the pair bounds both costs — and bench_compare gates the
    // disabled cost against the committed baseline.
    {
        obs::Tracer::Options topts;
        topts.bufferRecords = std::size_t(1) << 20;
        obs::Tracer::instance().enable(std::move(topts));
    }
    double traced_sec = bestOf(reps, [&] {
        auto res = sweep::ParallelSweep(1, sweep::SweepKernel::Batched)
                       .evaluate(suite, schemes, mode);
        benchmark::DoNotOptimize(res);
    });
    obs::Tracer::instance().disable();
    const double trace_overhead_pct =
        (traced_sec / batched_sec - 1.0) * 100.0;

    // The gate also cross-checks the kernels on the fixture: a fast
    // wrong kernel must not pass.
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        if (!(ref_results[i].pooled == batched_results[i].pooled) ||
            !(ref_results[i].pooled == simd_results[i].pooled)) {
            std::fprintf(stderr,
                         "[gate] FAIL: kernels disagree on %s\n",
                         sweep::formatScheme(schemes[i]).c_str());
            return 1;
        }
    }

    const double speedup = ref_sec / batched_sec;
    const double simd_speedup = batched_sec / simd_sec;
    const std::string simd_backend = sweep::simdBackendName();
    // The SIMD kernel is only held to "at least as fast as batched"
    // when the vector backend is actually live: on a non-AVX2 host
    // (or under CCP_SIMD_DISABLE) the lane kernel degrades to the
    // scalar fallback and the speedup is recorded but not gated.
    const bool gate_simd = simd_backend == "avx2";
    obs::Json doc = obs::Json::object();
    // Provenance stamp: which commit, when, and on what hardware —
    // so archived records and regression diffs are comparable.
    obs::Json meta = obs::Json::object();
    meta["git_sha"] = obs::Json(gitSha());
    meta["date_utc"] = obs::Json(isoUtcNow());
    meta["cpu_model"] = obs::Json(cpuModel());
    meta["threads"] = obs::Json(mt_threads);
    doc["meta"] = std::move(meta);
    obs::Json fixture = obs::Json::object();
    fixture["trace"] = obs::Json(tr.name());
    fixture["events"] = obs::Json(std::uint64_t(tr.events().size()));
    fixture["n_nodes"] = obs::Json(tr.nNodes());
    fixture["schemes"] = obs::Json(std::uint64_t(schemes.size()));
    fixture["mode"] = obs::Json(predict::updateModeName(mode));
    fixture["reps"] = obs::Json(reps);
    doc["fixture"] = std::move(fixture);
    auto record = [&](const char *key, unsigned threads,
                      double seconds) {
        obs::Json j = obs::Json::object();
        j["threads"] = obs::Json(threads);
        j["seconds"] = obs::Json(seconds);
        j["scheme_events_per_sec"] =
            obs::Json(scheme_events / seconds);
        doc[key] = std::move(j);
    };
    record("reference", 1, ref_sec);
    record("batched", 1, batched_sec);
    record("batched_parallel", mt_threads, mt_sec);
    record("simd", 1, simd_sec);

    // Perceptron sweep throughput: the learned family through the
    // batched kernel, cross-checked against the reference and
    // *recorded* (bench_compare only gates metrics present in the
    // committed baseline, so this rides along ungated until a
    // baseline containing it lands).
    {
        auto perc_schemes = perceptronFixture();
        std::vector<predict::SuiteResult> perc_ref, perc_batched;
        double perc_ref_sec = bestOf(reps, [&] {
            perc_ref =
                sweep::ParallelSweep(1, sweep::SweepKernel::Reference)
                    .evaluate(suite, perc_schemes, mode);
        });
        double perc_sec = bestOf(reps, [&] {
            perc_batched =
                sweep::ParallelSweep(1, sweep::SweepKernel::Batched)
                    .evaluate(suite, perc_schemes, mode);
        });
        for (std::size_t i = 0; i < perc_schemes.size(); ++i) {
            if (!(perc_ref[i].pooled == perc_batched[i].pooled)) {
                std::fprintf(
                    stderr,
                    "[gate] FAIL: kernels disagree on %s\n",
                    sweep::formatScheme(perc_schemes[i]).c_str());
                return 1;
            }
        }
        const double perc_events = double(tr.events().size()) *
                                   double(perc_schemes.size());
        obs::Json j = obs::Json::object();
        j["threads"] = obs::Json(1u);
        j["schemes"] =
            obs::Json(std::uint64_t(perc_schemes.size()));
        j["seconds"] = obs::Json(perc_sec);
        j["scheme_events_per_sec"] =
            obs::Json(perc_events / perc_sec);
        j["reference_seconds"] = obs::Json(perc_ref_sec);
        doc["perceptron"] = std::move(j);
        std::fprintf(stderr,
                     "[gate] perceptron fixture: %zu schemes, "
                     "batched %.3fs (%.1fM scheme-events/s, "
                     "recorded)\n",
                     perc_schemes.size(), perc_sec,
                     perc_events / perc_sec / 1e6);
    }
    // Which lane backend produced the simd numbers — bench_compare
    // only gates simd_speedup when this says "avx2".
    doc["simd"]["backend"] = obs::Json(simd_backend);
    doc["speedup"] = obs::Json(speedup);
    doc["simd_speedup"] = obs::Json(simd_speedup);
    obs::Json tracing = obs::Json::object();
    tracing["disabled_seconds"] = obs::Json(batched_sec);
    tracing["enabled_seconds"] = obs::Json(traced_sec);
    tracing["enabled_overhead_pct"] = obs::Json(trace_overhead_pct);
    doc["tracing"] = std::move(tracing);

    const char *env_path = std::getenv("CCP_BENCH_JSON");
    const std::string path = env_path ? env_path : "BENCH_sweep.json";
    std::ofstream os(path, std::ios::binary);
    os << doc.dump(2) << "\n";
    if (!os.good()) {
        std::fprintf(stderr, "[gate] FAIL: cannot write %s\n",
                     path.c_str());
        return 1;
    }

    std::fprintf(stderr,
                 "[gate] reference %.3fs (%.1fM scheme-events/s), "
                 "batched %.3fs (%.1fM), x%u threads %.3fs (%.1fM): "
                 "speedup %.2fx -> %s\n",
                 ref_sec, scheme_events / ref_sec / 1e6, batched_sec,
                 scheme_events / batched_sec / 1e6, mt_threads, mt_sec,
                 scheme_events / mt_sec / 1e6, speedup,
                 speedup >= 1.0 ? "ok" : "FAIL (batched slower than "
                                         "reference)");
    const bool simd_ok = !gate_simd || simd_speedup >= 1.0;
    std::fprintf(stderr,
                 "[gate] simd (%s) %.3fs (%.1fM): %.2fx over batched "
                 "-> %s\n",
                 simd_backend.c_str(), simd_sec,
                 scheme_events / simd_sec / 1e6, simd_speedup,
                 simd_ok ? (gate_simd ? "ok" : "recorded, not gated "
                                               "(scalar backend)")
                         : "FAIL (simd slower than batched on an "
                           "AVX2 host)");
    std::fprintf(stderr,
                 "[gate] tracing enabled %.3fs vs disabled %.3fs "
                 "(%+.2f%% overhead)\n",
                 traced_sec, batched_sec, trace_overhead_pct);
    return speedup >= 1.0 && simd_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return runSweepGate();
}
