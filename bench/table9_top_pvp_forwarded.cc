/**
 * @file
 * Reproduces Table 9: the ten highest-PVP schemes under forwarded
 * update.  Expected shape: deep intersection schemes again; PVP
 * barely changes versus direct update but sensitivity improves, and
 * several schemes overlap with Table 8's list.
 */

#include "topten_common.hh"

int
main()
{
    using namespace ccp;
    return benchutil::runTopTen(
        "Table 9: top 10 PVP, forwarded update",
        predict::UpdateMode::Forwarded, sweep::RankBy::Pvp,
        benchutil::paperTable9());
}
