/**
 * @file
 * Reproduces Table 9: the ten highest-PVP schemes under forwarded
 * update.  Expected shape: deep intersection schemes again; PVP
 * barely changes versus direct update but sensitivity improves, and
 * several schemes overlap with Table 8's list.
 */

#include "topten_common.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    benchutil::BenchContext ctx("table9_top_pvp_forwarded", argc, argv,
                                benchutil::Sharding::Supported);
    return benchutil::runTopTen(
        ctx, "Table 9: top 10 PVP, forwarded update",
        predict::UpdateMode::Forwarded, sweep::RankBy::Pvp,
        benchutil::paperTable9());
}
