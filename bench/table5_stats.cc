/**
 * @file
 * Reproduces Table 5: store instruction and cache block statistics.
 *
 * Expected shape versus the paper: the static-store counts are small
 * (tens to a few hundred per node — the leverage of instruction-based
 * prediction), predicted stores are a subset of static stores, and
 * ocean dominates blocks touched and store misses.  Absolute counts
 * differ because our kernels are sharing-pattern models of the
 * originals at reduced iteration counts (see DESIGN.md).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("table5_stats", argc, argv);
    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    std::printf("Table 5: store instruction and cache block statistics\n");
    std::printf("(per benchmark; 'paper' columns are the published "
                "values)\n\n");

    Table t({"benchmark", "static", "paper", "predicted", "paper",
             "blocks", "paper", "misses", "paper"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &tr = suite[i];
        const auto &ref = paperTable5()[i];
        t.addRow({tr.name(), fmtU(tr.meta().maxStaticStoresPerNode),
                  fmtU(ref.maxStaticStores),
                  fmtU(tr.meta().maxPredictedStoresPerNode),
                  fmtU(ref.maxPredictedStores),
                  fmtU(tr.meta().blocksTouched),
                  fmtU(ref.blocksTouched), fmtU(tr.storeMisses()),
                  fmtU(ref.storeMisses)});
    }
    t.print();

    std::printf("\nShape checks:\n");
    bool small_static = true, subset = true;
    std::uint64_t ocean_misses = 0, max_other = 0;
    for (const auto &tr : suite) {
        small_static &= tr.meta().maxStaticStoresPerNode < 512;
        subset &= tr.meta().maxPredictedStoresPerNode <=
                  tr.meta().maxStaticStoresPerNode;
        if (tr.name() == "ocean")
            ocean_misses = tr.storeMisses();
        else
            max_other = std::max(max_other, tr.storeMisses());
    }
    std::printf("  static stores are few (<512/node):        %s\n",
                small_static ? "yes" : "NO");
    std::printf("  predicted stores subset of static stores: %s\n",
                subset ? "yes" : "NO");
    std::printf("  ocean has the most store misses:          %s\n",
                ocean_misses > max_other ? "yes" : "NO");

    obs::Json &results = ctx.results();
    results["static_stores_small"] = obs::Json(small_static);
    results["predicted_subset_of_static"] = obs::Json(subset);
    results["ocean_most_misses"] =
        obs::Json(ocean_misses > max_other);
    return ctx.finish();
}
