/**
 * @file
 * Reproduces Figure 7: union prediction (history depth 2, 16-bit max
 * index) under direct, forwarded, and ordered update.  Expected
 * shape: like Figure 6 but with the sensitivity curve above the PVP
 * curve — union makes more, but less good, predictions.
 */

#include "figure_common.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    benchutil::BenchContext ctx("fig7_union", argc, argv);
    return benchutil::runFigure(
        ctx, "Figure 7: union prediction, depth 2, 16-bit max index",
        predict::FunctionKind::Union, 2, sweep::figureIndexSeries16());
}
