/**
 * @file
 * Reproduces Table 11: the ten most sensitive schemes under forwarded
 * update.  Expected shape: deep unions again, heavily overlapping
 * Table 10's list (update mechanism matters little for union
 * sensitivity).
 */

#include "topten_common.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    benchutil::BenchContext ctx("table11_top_sens_forwarded", argc, argv,
                                benchutil::Sharding::Supported);
    return benchutil::runTopTen(
        ctx, "Table 11: top 10 sensitivity, forwarded update",
        predict::UpdateMode::Forwarded, sweep::RankBy::Sensitivity,
        benchutil::paperTable11());
}
