/**
 * @file
 * Ablation A1 (DESIGN.md): how much does the update mechanism matter,
 * per scheme family?  The paper's figures show direct/forwarded/
 * ordered side by side per indexing; this bench condenses the deltas
 * for representative schemes, quantifying two of the paper's claims:
 * update mechanism has little effect on address-based schemes (they
 * are provably identical) and matters most for instruction-indexed
 * schemes whose writers alternate.
 */

#include "bench_util.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("ablate_update", argc, argv);

    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    const char *schemes[] = {
        "union(dir+add16)1",     // pure address: provably identical
        "last(pid+add8)1",       // Lai & Falsafi style
        "inter(pid+pc8)2",       // instruction-based
        "union(pc8)2",           // pc without pid (bad performer)
        "inter(pid+pc4+add6)4",  // hybrid deep intersection
        "union(pid+dir+add4)4",  // hybrid deep union
    };

    std::vector<predict::SchemeSpec> specs;
    for (const char *text : schemes) {
        auto parsed = sweep::parseScheme(text);
        if (!parsed)
            return 1;
        specs.push_back(parsed->scheme);
    }

    // One sharded batch per update mechanism instead of a scheme-by-
    // scheme loop: the three mode sweeps dominate the runtime.
    std::vector<predict::SuiteResult> by_mode[3];
    int m = 0;
    for (auto mode : {predict::UpdateMode::Direct,
                      predict::UpdateMode::Forwarded,
                      predict::UpdateMode::Ordered})
        by_mode[m++] = evaluateAllOrExit(ctx, suite, specs, mode);

    std::printf("Ablation: update mechanism per scheme family\n\n");
    Table t({"scheme", "metric", "direct", "forwarded", "ordered",
             "ordered-direct"});
    for (std::size_t s = 0; s < specs.size(); ++s) {
        double sens[3], pvp[3];
        for (int i = 0; i < 3; ++i) {
            sens[i] = by_mode[i][s].avgSensitivity();
            pvp[i] = by_mode[i][s].avgPvp();
        }
        t.addRow({schemes[s], "sens", fmt(sens[0], 3), fmt(sens[1], 3),
                  fmt(sens[2], 3), fmt(sens[2] - sens[0], 3)});
        t.addRow({"", "pvp", fmt(pvp[0], 3), fmt(pvp[1], 3),
                  fmt(pvp[2], 3), fmt(pvp[2] - pvp[0], 3)});
    }
    t.print();

    std::printf("\nExpected: zero deltas for the pure address scheme; "
                "the largest gains from ordered update appear on\n"
                "writer-identified (pid/pc) schemes.\n");
    return ctx.finish();
}
