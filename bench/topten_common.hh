/**
 * @file
 * Shared driver for the top-10 benches (Tables 8-11): enumerate the
 * affordable design space, rank by the requested metric under the
 * requested update mode, and print our top-10 next to the paper's.
 */

#ifndef CCP_BENCH_TOPTEN_COMMON_HH
#define CCP_BENCH_TOPTEN_COMMON_HH

#include <cmath>

#include "bench_util.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"
#include "sweep/space.hh"

namespace ccp::benchutil {

inline sweep::SpaceSpec
paperSpace()
{
    sweep::SpaceSpec space;
    // The paper explores implementations up to 2^24 bits.  PAs
    // schemes are swept on a coarser grid (they are uniformly
    // dominated — Section 5.4.1 finds no two-level scheme in any
    // top-10 — and cost ~20x more to simulate); set CCP_FULL_PAS=1
    // to widen.
    if (std::getenv("CCP_FULL_PAS")) {
        space.pasDepths = {1, 2, 4};
    } else {
        space.pasDepths = {2};
    }
    // The learned family rides the same sweep so perceptron schemes
    // rank head-to-head against the paper's; the default grid is kept
    // coarse for the same cost reason as PAs (the per-node training
    // loop is the expensive part).  CCP_FULL_PERC=1 widens every
    // perceptron dimension.
    if (std::getenv("CCP_FULL_PERC")) {
        space.percDepths = {1, 2, 4, 8};
        space.percWeightBits = {4, 5, 6, 8};
        space.percThetas = {1, 2, 4, 8};
        space.percBloomBits = {0, 8, 16, 32};
    } else {
        space.percDepths = {2};
        space.percWeightBits = {5};
        space.percThetas = {2};
        space.percBloomBits = {0, 16};
    }
    return space;
}

inline int
runTopTen(BenchContext &ctx, const char *title, predict::UpdateMode mode,
          sweep::RankBy by, const std::vector<PaperTopTen> &paper)
{
    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);
    auto schemes = enumerateSchemes(paperSpace());

    // Shard-worker mode: evaluate this worker's sub-list and leave
    // the shard checkpoint; no table (the merge prints it).
    if (ctx.shardWorker())
        return runShardWorker(ctx, suite, schemes, mode);

    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "[bench] sweeping %zu schemes...\n",
                     schemes.size());
    obs::ProgressReporter reporter("sweep");
    auto on_progress = [&reporter](const obs::Progress &p) {
        reporter(p);
    };
    sweep::ResilientOutcome outcome;
    // Supervisor mode swaps only the evaluation engine (a worker
    // fleet instead of in-process threads); ranking and printing
    // below are shared, so the orchestrated table is byte-identical
    // to the single-process one wherever shards completed.
    auto results_vec =
        ctx.orchestrating()
            ? orchestrateSchemes(ctx, suite, schemes, mode,
                                 on_progress, outcome)
            : evaluateSchemesResilient(ctx, suite, schemes, mode,
                                       on_progress, outcome);
    if (outcome.interrupted) {
        // Drained early: the checkpoint holds everything finished so
        // far; a partial top-10 would be misleading, so don't rank.
        std::fprintf(stderr,
                     "[bench] sweep interrupted — rerun with "
                     "--resume to continue from %s\n",
                     outcome.checkpointFile.c_str());
        return ctx.finishWith(outcome.exitCode());
    }
    if (!outcome.failures.empty())
        std::fprintf(stderr,
                     "[bench] %zu scheme(s) failed and are excluded "
                     "from the ranking (see the report's resilience "
                     "section)\n", outcome.failures.size());
    auto top = sweep::rankResults(results_vec, by, 10,
                                  suite.front().nNodes(),
                                  &outcome.completed);

    std::printf("%s\n\n", title);
    Table t({"#", "scheme", "size", "prev", "pvp", "sens", "| paper",
             "size", "pvp", "sens"});
    for (std::size_t i = 0; i < top.size(); ++i) {
        const auto &r = top[i];
        const auto &p = paper[i];
        t.addRow({std::to_string(i + 1),
                  sweep::formatScheme(r.result.scheme),
                  fmt(std::log2(double(r.result.scheme.sizeBits(16))),
                      0),
                  fmt(r.result.avgPrevalence()),
                  fmt(r.result.avgPvp()), fmt(r.result.avgSensitivity()),
                  std::string("| ") + p.scheme,
                  std::to_string(p.sizeLog2), fmt(p.pvp), fmt(p.sens)});
    }
    t.print();

    // Shape checks.
    unsigned deep = 0, with_pid = 0, inter_count = 0, union_count = 0;
    for (const auto &r : top) {
        deep += r.result.scheme.depth >= 3;
        with_pid += r.result.scheme.index.usePid;
        inter_count += r.result.scheme.kind ==
                       predict::FunctionKind::Inter;
        union_count += r.result.scheme.kind ==
                       predict::FunctionKind::Union;
    }
    std::printf("\nShape checks:\n");
    std::printf("  deep-history schemes in top-10:  %u/10\n", deep);
    if (by == sweep::RankBy::Pvp) {
        std::printf("  intersection schemes in top-10:  %u/10 "
                    "(paper: 10)\n",
                    inter_count);
        std::printf("  pid-indexed schemes in top-10:   %u/10 "
                    "(paper: 10)\n",
                    with_pid);
    } else {
        std::printf("  union schemes in top-10:         %u/10 "
                    "(paper: 10)\n",
                    union_count);
    }

    obs::Json &results = ctx.results();
    results["schemes_swept"] = obs::Json(schemes.size());
    obs::Json &rows = results["top"];
    rows = obs::Json::array();
    for (const auto &r : top) {
        obs::Json row = suiteResultJson(r.result);
        row["score"] = obs::Json(r.score);
        rows.append(std::move(row));
    }
    obs::Json &shape = results["shape"];
    shape["deep_history"] = obs::Json(deep);
    shape["pid_indexed"] = obs::Json(with_pid);
    shape["inter"] = obs::Json(inter_count);
    shape["union"] = obs::Json(union_count);
    return ctx.finish();
}

} // namespace ccp::benchutil

#endif // CCP_BENCH_TOPTEN_COMMON_HH
