/**
 * @file
 * Ablation A7: closed-loop online forwarding — the "actual data
 * forwarding protocol" the paper defers (§3.3), run inside the
 * machine.  For each scheme the suite executes with predictions
 * pushing real copies into caches; we report the modelled latency
 * saved against the no-forwarding baseline together with the costs
 * the open-loop study cannot see: extra write faults (the writer
 * yields permission after forwarding), cache pollution evictions,
 * and wasted forwards.
 *
 * Expected: high-PVP intersection forwards little and wastes almost
 * nothing; deep union hides the most latency but pays in wasted
 * forwards and upgrades — the paper's bandwidth-latency trade-off,
 * now with protocol-level costs attached.
 */

#include "bench_util.hh"
#include "forward/online.hh"
#include "sim/machine.hh"
#include "sweep/name.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("ablate_online", argc, argv);

    const double scale = envScale() * 0.3;
    const std::uint64_t seed = envSeed();

    auto run = [&](const predict::SchemeSpec *scheme) {
        mem::ProtocolStats total;
        for (const auto &name : workloads::workloadNames()) {
            workloads::WorkloadParams params;
            params.seed = seed;
            params.scale = scale;
            mem::MachineConfig cfg;
            sim::Machine machine(cfg, name, seed ^ 0xfeedbeef);
            std::unique_ptr<forward::OnlineForwarder> fwd;
            if (scheme) {
                fwd = std::make_unique<forward::OnlineForwarder>(
                    *scheme, cfg.nNodes);
                fwd->attach(machine.controller());
            }
            workloads::makeWorkload(name, params)->run(machine);
            const auto &s = machine.controller().stats();
            total.latency += s.latency;
            total.writeFaults += s.writeFaults;
            total.forwardsSent += s.forwardsSent;
            total.forwardHits += s.forwardHits;
            total.wastedForwards += s.wastedForwards;
            total.pollutionEvictions += s.pollutionEvictions;
        }
        return total;
    };

    std::printf("Ablation: closed-loop online forwarding "
                "(suite totals, scale %.2f)\n\n",
                scale);

    auto base = run(nullptr);
    Table t({"scheme", "latency(Mc)", "saved%", "fwd-hits", "wasted",
             "pollution", "extra-upgrades"});
    t.addRow({"(none)", fmt(base.latency / 1e6), "-", "0", "0", "0",
              "-"});

    const char *schemes[] = {
        "inter(pid+add6)4",
        "inter(pid+pc8)2",
        "last(pid+add8)1",
        "union(pid+dir+add4)2",
        "union(dir+add14)4",
    };
    for (const char *text : schemes) {
        auto scheme = sweep::parseScheme(text)->scheme;
        auto s = run(&scheme);
        double saved =
            100.0 * (double(base.latency) - double(s.latency)) /
            double(base.latency);
        t.addRow({text, fmt(s.latency / 1e6), fmt(saved, 1),
                  fmtU(s.forwardHits), fmtU(s.wastedForwards),
                  fmtU(s.pollutionEvictions),
                  fmtU(s.writeFaults - base.writeFaults)});
    }
    t.print();

    std::printf("\nExpected: latency saved grows toward deep union; "
                "so do wasted forwards, pollution and the\n"
                "write faults induced by yielding write permission.\n");
    return ctx.finish();
}
