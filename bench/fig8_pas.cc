/**
 * @file
 * Reproduces Figure 8: two-level PAs prediction (history depth 1,
 * 12-bit max index — PAs entries are inherently expensive) under
 * direct, forwarded, and ordered update.  Expected shape: PAs
 * benefits from pid indexing but never beats the window predictors;
 * the SPLASH traces contain no patterns for it to exploit.
 */

#include "figure_common.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    benchutil::BenchContext ctx("fig8_pas", argc, argv);
    return benchutil::runFigure(
        ctx, "Figure 8: PAs prediction, depth 1, 12-bit max index",
        predict::FunctionKind::PAs, 1, sweep::figureIndexSeries12());
}
