/**
 * @file
 * serve_bench: the predictd throughput/latency gate (docs/SERVING.md).
 *
 * Replays the cached benchmark suite as M concurrent clients against
 * a PredictServer: each client thread streams one trace's events
 * through submit() (spinning on backpressure) while draining its
 * response ring.  Two measurements come out:
 *
 *   inline   one thread stepping M sessions sequentially — the
 *            no-pipeline oracle, and the ground truth the served
 *            per-session confusion counts must match exactly;
 *   serve    the full submit -> SPSC ring -> agent -> response
 *            pipeline at the requested agent count.
 *
 * Writes BENCH_serve.json (events/sec for both paths, their ratio,
 * and the server-side ingest-to-predict p50/p99 latency) for
 * tools/bench_compare, which gates `pipeline_ratio` against the
 * committed baseline.  Stdout is a deterministic per-session stats
 * table (no timings), so CI can `cmp` runs at different agent counts;
 * timings go to stderr and the JSON.
 *
 * Flags (numbers parse strictly; see common/parse.hh):
 *   --clients N            client sessions (default 4)
 *   --agents N | --threads N   agent threads (default 2; 0 = all hw)
 *   --events N             cap events per client (0 = whole trace)
 *   --scheme S             scheme notation, e.g. "inter(pid+pc8)2" or
 *                          "last(pid+pc8)1[forwarded]"
 *   --window N             sliding-window length (default 4096)
 *   --ring N               ingest/response ring capacity (default 4096)
 *   --snapshot <path>      CCPS snapshot file (periodic + final)
 *   --snapshot-interval S  seconds between periodic snapshots
 *   --resume               restore from --snapshot before serving
 *   --out <path>           JSON output (default BENCH_serve.json)
 *   --log L                log level
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/parse.hh"
#include "obs/json.hh"
#include "serve/server.hh"
#include "sweep/name.hh"

using namespace ccp;

namespace {

std::string
rstrip(std::string s)
{
    while (!s.empty() &&
           (s.back() == '\n' || s.back() == '\r' || s.back() == ' '))
        s.pop_back();
    return s;
}

std::string
gitSha()
{
    if (const char *env = std::getenv("CCP_GIT_SHA"))
        return rstrip(env);
    std::string sha;
    if (FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[128];
        if (std::fgets(buf, sizeof(buf), p))
            sha = rstrip(buf);
        ::pclose(p);
    }
    return sha.empty() ? "unknown" : sha;
}

std::string
isoUtcNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm = {};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::string
cpuModel()
{
    std::ifstream is("/proc/cpuinfo");
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("model name", 0) != 0)
            continue;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            break;
        std::size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start == std::string::npos)
            break;
        return rstrip(line.substr(start));
    }
    return "unknown";
}

struct Args
{
    unsigned clients = 4;
    unsigned agents = 2;
    std::uint64_t eventsPerClient = 0;
    std::string scheme = "inter(pid+pc8)2";
    std::size_t window = 4096;
    std::size_t ring = 4096;
    std::string snapshotPath;
    double snapshotIntervalSec = 0.0;
    bool resume = false;
    std::string outPath = "BENCH_serve.json";
};

bool
takesValue(const std::string &arg, const std::string &flag, int &i,
           int argc, char **argv, std::string &value)
{
    if (arg == flag) {
        if (i + 1 >= argc)
            ccp_fatal(flag, " needs a value");
        value = argv[++i];
        return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
        value = arg.substr(flag.size() + 1);
        return true;
    }
    return false;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        std::uint64_t n = 0;
        if (takesValue(arg, "--clients", i, argc, argv, value)) {
            if (!parseU64InRange(value, n, 4096) || n == 0)
                ccp_fatal("bad --clients value '", value,
                          "' (want 1..4096)");
            args.clients = static_cast<unsigned>(n);
        } else if (takesValue(arg, "--agents", i, argc, argv, value) ||
                   takesValue(arg, "--threads", i, argc, argv,
                              value)) {
            if (!parseU64InRange(value, n, 4096))
                ccp_fatal("bad --agents value '", value,
                          "' (want 0..4096; 0 = all hardware "
                          "threads)");
            args.agents = static_cast<unsigned>(n);
        } else if (takesValue(arg, "--events", i, argc, argv,
                              value)) {
            if (!parseU64(value, n))
                ccp_fatal("bad --events value '", value,
                          "' (want an event count; 0 = all)");
            args.eventsPerClient = n;
        } else if (takesValue(arg, "--scheme", i, argc, argv,
                              value)) {
            args.scheme = value;
        } else if (takesValue(arg, "--window", i, argc, argv,
                              value)) {
            if (!parseU64InRange(value, n, 1u << 20) || n == 0)
                ccp_fatal("bad --window value '", value,
                          "' (want 1..1048576 events)");
            args.window = static_cast<std::size_t>(n);
        } else if (takesValue(arg, "--ring", i, argc, argv, value)) {
            if (!parseU64InRange(value, n, 1u << 24) || n < 2)
                ccp_fatal("bad --ring value '", value,
                          "' (want 2..16777216 slots)");
            args.ring = static_cast<std::size_t>(n);
        } else if (takesValue(arg, "--snapshot", i, argc, argv,
                              value)) {
            if (value.empty())
                ccp_fatal("--snapshot needs a non-empty path");
            args.snapshotPath = value;
        } else if (takesValue(arg, "--snapshot-interval", i, argc,
                              argv, value)) {
            double sec = 0.0;
            if (!parseDouble(value, sec) || sec < 0)
                ccp_fatal("bad --snapshot-interval '", value,
                          "' (want seconds >= 0)");
            args.snapshotIntervalSec = sec;
        } else if (arg == "--resume") {
            args.resume = true;
        } else if (takesValue(arg, "--out", i, argc, argv, value)) {
            if (value.empty())
                ccp_fatal("--out needs a non-empty path");
            args.outPath = value;
        } else if (takesValue(arg, "--log", i, argc, argv, value)) {
            LogLevel level = LogLevel::Info;
            if (!parseLogLevel(value, level))
                ccp_fatal("bad --log level '", value,
                          "' (want quiet|warn|info|debug)");
            setLogLevel(level);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: serve_bench [--clients <n>] [--agents <n>] "
                "[--events <n>] [--scheme <notation>] [--window <n>] "
                "[--ring <n>] [--snapshot <path>] "
                "[--snapshot-interval <sec>] [--resume] "
                "[--out <bench.json>] [--log <level>]\n");
            std::exit(0);
        } else {
            ccp_fatal("unknown argument '", arg, "' (try --help)");
        }
    }
    if (args.resume && args.snapshotPath.empty())
        ccp_fatal("--resume needs --snapshot <path>");
    return args;
}

double
elapsedSec(std::chrono::steady_clock::time_point t0)
{
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return dt.count();
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);

    auto parsed = sweep::parseScheme(args.scheme);
    if (!parsed)
        ccp_fatal("bad --scheme notation '", args.scheme, "'");
    serve::SessionConfig session_cfg;
    session_cfg.scheme = parsed->scheme;
    session_cfg.mode =
        parsed->mode.value_or(predict::UpdateMode::Direct);
    session_cfg.windowEvents = args.window;
    if (session_cfg.mode == predict::UpdateMode::Ordered)
        ccp_fatal("ordered update cannot be served online; use "
                  "direct or forwarded");

    const auto suite = benchutil::loadOrGenerateSuite();
    const unsigned n_nodes = suite.front().nNodes();

    // Client i replays trace i mod |suite| (optionally truncated).
    std::vector<const std::vector<trace::CoherenceEvent> *> streams;
    std::vector<std::uint64_t> stream_len(args.clients);
    std::uint64_t total_events = 0;
    for (unsigned c = 0; c < args.clients; ++c) {
        const auto &events = suite[c % suite.size()].events();
        streams.push_back(&events);
        stream_len[c] = events.size();
        if (args.eventsPerClient > 0)
            stream_len[c] =
                std::min<std::uint64_t>(stream_len[c],
                                        args.eventsPerClient);
        total_events += stream_len[c];
    }

    // ---- Inline oracle: one thread, M sessions, no pipeline. ----
    std::vector<serve::SessionStats> inline_stats;
    auto t0 = std::chrono::steady_clock::now();
    {
        std::vector<serve::Session> sessions;
        sessions.reserve(args.clients);
        for (unsigned c = 0; c < args.clients; ++c)
            sessions.emplace_back(c, session_cfg, n_nodes);
        for (unsigned c = 0; c < args.clients; ++c)
            for (std::uint64_t i = 0; i < stream_len[c]; ++i)
                sessions[c].onEvent((*streams[c])[i]);
        for (const auto &s : sessions)
            inline_stats.push_back(s.stats());
    }
    const double inline_sec = elapsedSec(t0);

    // ---- Served pipeline. ----
    serve::ServeOptions opts;
    opts.session = session_cfg;
    opts.nNodes = n_nodes;
    opts.sessions = args.clients;
    opts.agents = args.agents;
    opts.ringCapacity = args.ring;
    opts.snapshotPath = args.snapshotPath;
    opts.snapshotIntervalSec = args.snapshotIntervalSec;
    serve::PredictServer server(opts);
    if (args.resume) {
        auto status = server.restore();
        std::fprintf(stderr, "[serve] restore: %s\n",
                     sweep::checkpointLoadName(status));
        if (status == sweep::CheckpointLoad::Invalid ||
            status == sweep::CheckpointLoad::KeyMismatch ||
            status == sweep::CheckpointLoad::UnsupportedKind)
            return 1;
    }

    std::vector<std::uint64_t> received(args.clients, 0);
    t0 = std::chrono::steady_clock::now();
    if (!server.start())
        ccp_fatal("server failed to start");
    {
        std::vector<std::thread> clients;
        clients.reserve(args.clients);
        for (unsigned c = 0; c < args.clients; ++c) {
            clients.emplace_back([&, c] {
                std::vector<serve::Prediction> preds;
                preds.reserve(256);
                for (std::uint64_t i = 0; i < stream_len[c]; ++i) {
                    while (!server.submit(c, (*streams[c])[i]))
                        std::this_thread::yield();
                    if ((i & 63) == 0) {
                        preds.clear();
                        received[c] +=
                            server.pollPredictions(c, preds, 256);
                    }
                }
                // Drain what the agents have served so far; stop()
                // finishes the rest (drops are counted, not lost
                // silently).
                std::size_t n;
                do {
                    preds.clear();
                    n = server.pollPredictions(c, preds, 256);
                    received[c] += n;
                } while (n > 0);
            });
        }
        for (auto &t : clients)
            t.join();
    }
    server.stop();
    const double serve_sec = elapsedSec(t0);
    std::uint64_t received_total = 0;
    for (unsigned c = 0; c < args.clients; ++c) {
        std::vector<serve::Prediction> preds;
        received_total +=
            server.pollPredictions(c, preds, ~std::size_t(0));
        received_total += received[c];
    }

    // ---- Correctness: served state must equal the inline oracle
    // (same events, same order, same update rule). ----
    auto sameConfusion = [](const predict::Confusion &a,
                            const predict::Confusion &b) {
        return a.tp == b.tp && a.fp == b.fp && a.tn == b.tn &&
               a.fn == b.fn;
    };
    for (unsigned c = 0; !args.resume && c < args.clients; ++c) {
        serve::SessionStats got = server.stats(c);
        const serve::SessionStats &want = inline_stats[c];
        if (got.events != want.events ||
            !sameConfusion(got.total, want.total) ||
            !sameConfusion(got.window, want.window))
            ccp_fatal("served session ", c,
                      " diverged from the inline oracle (events ",
                      got.events, " vs ", want.events, ")");
    }

    // Deterministic stdout: per-session screening stats, no timings,
    // so runs at different agent counts must compare byte-identical.
    benchutil::Table table({"session", "trace", "events", "sens",
                            "pvp", "win_sens", "win_pvp"});
    for (unsigned c = 0; c < args.clients; ++c) {
        const serve::SessionStats &s = inline_stats[c];
        table.addRow({std::to_string(c),
                      suite[c % suite.size()].name(),
                      std::to_string(s.events),
                      benchutil::fmt(s.total.sensitivity()),
                      benchutil::fmt(s.total.pvp()),
                      benchutil::fmt(s.window.sensitivity()),
                      benchutil::fmt(s.window.pvp())});
    }
    table.print();

    const auto &root = obs::StatsRegistry::root();
    const LogHistogram *lat =
        root.findLatency("serve.ingest_to_predict_ns");
    const double p50 = lat ? lat->p50() : 0.0;
    const double p99 = lat ? lat->p99() : 0.0;
    const std::uint64_t snapshots =
        root.findCounter("serve.snapshots")
            ? root.findCounter("serve.snapshots")->value
            : 0;

    const double serve_eps =
        serve_sec > 0 ? static_cast<double>(total_events) / serve_sec
                      : 0.0;
    const double inline_eps =
        inline_sec > 0
            ? static_cast<double>(total_events) / inline_sec
            : 0.0;

    obs::Json doc = obs::Json::object();
    obs::Json meta = obs::Json::object();
    meta["kind"] = obs::Json("serve");
    meta["git_sha"] = obs::Json(gitSha());
    meta["date_utc"] = obs::Json(isoUtcNow());
    meta["cpu_model"] = obs::Json(cpuModel());
    meta["clients"] = obs::Json(args.clients);
    meta["agents"] = obs::Json(server.agents());
    meta["scheme"] = obs::Json(sweep::formatScheme(
        session_cfg.scheme, session_cfg.mode));
    meta["window_events"] =
        obs::Json(std::uint64_t(session_cfg.windowEvents));
    meta["ring_capacity"] = obs::Json(std::uint64_t(args.ring));
    doc["meta"] = std::move(meta);

    obs::Json serve_j = obs::Json::object();
    serve_j["events"] = obs::Json(total_events);
    serve_j["seconds"] = obs::Json(serve_sec);
    serve_j["events_per_sec"] = obs::Json(serve_eps);
    serve_j["p50_ns"] = obs::Json(p50);
    serve_j["p99_ns"] = obs::Json(p99);
    serve_j["backpressure"] = obs::Json(server.backpressure());
    serve_j["responses_received"] = obs::Json(received_total);
    serve_j["responses_dropped"] =
        obs::Json(server.responsesDropped());
    serve_j["snapshots"] = obs::Json(snapshots);
    doc["serve"] = std::move(serve_j);

    obs::Json inline_j = obs::Json::object();
    inline_j["events"] = obs::Json(total_events);
    inline_j["seconds"] = obs::Json(inline_sec);
    inline_j["events_per_sec"] = obs::Json(inline_eps);
    doc["inline"] = std::move(inline_j);

    doc["pipeline_ratio"] = obs::Json(
        inline_eps > 0 ? serve_eps / inline_eps : 0.0);

    std::ofstream os(args.outPath, std::ios::binary);
    os << doc.dump(2) << "\n";
    if (!os.good()) {
        std::fprintf(stderr, "[serve] FAIL: cannot write %s\n",
                     args.outPath.c_str());
        return 1;
    }

    std::fprintf(stderr,
                 "[serve] %llu events: inline %.3fs (%.2fM ev/s), "
                 "served %.3fs (%.2fM ev/s, ratio %.2fx), "
                 "latency p50 %.0fns p99 %.0fns, %u agents\n",
                 static_cast<unsigned long long>(total_events),
                 inline_sec, inline_eps / 1e6, serve_sec,
                 serve_eps / 1e6,
                 inline_eps > 0 ? serve_eps / inline_eps : 0.0, p50,
                 p99, server.agents());
    return 0;
}
