/**
 * @file
 * Shared driver for the figure benches (Figures 6-8): one prediction
 * function over the sixteen-position indexing series, under all three
 * update mechanisms, printing the sensitivity and PVP series that the
 * paper plots as bars.
 */

#ifndef CCP_BENCH_FIGURE_COMMON_HH
#define CCP_BENCH_FIGURE_COMMON_HH

#include <cmath>

#include "bench_util.hh"
#include "sweep/figures.hh"

namespace ccp::benchutil {

inline void
printSeries(const char *mode_name,
            const std::vector<sweep::FigurePoint> &points)
{
    std::printf("%s update:\n", mode_name);
    Table t({"index(addr/dir/pc/pid)", "sensitivity", "pvp"});
    for (const auto &pt : points)
        t.addRow({pt.label, fmt(pt.sensitivity, 3), fmt(pt.pvp, 3)});
    t.print();
    std::printf("\n");
}

/** Append one figure's series to a CSV file for plotting (set
 *  CCP_CSV_DIR to enable). */
inline void
writeSeriesCsv(const char *figure, const char *mode_name,
               const std::vector<sweep::FigurePoint> &points)
{
    const char *dir = std::getenv("CCP_CSV_DIR");
    if (!dir)
        return;
    std::filesystem::create_directories(dir);
    std::string path = std::string(dir) + "/" + figure + ".csv";
    bool fresh = !std::filesystem::exists(path);
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f)
        return;
    if (fresh)
        std::fprintf(f, "figure,update,index,sensitivity,pvp\n");
    for (const auto &pt : points)
        std::fprintf(f, "%s,%s,%s,%.6f,%.6f\n", figure, mode_name,
                     pt.label.c_str(), pt.sensitivity, pt.pvp);
    std::fclose(f);
}

inline int
runFigure(BenchContext &ctx, const char *title,
          predict::FunctionKind kind, unsigned depth,
          const std::vector<predict::IndexSpec> &series)
{
    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    std::printf("%s\n(suite-average sensitivity and PVP per indexing "
                "combination)\n\n",
                title);

    obs::Json &results = ctx.results();
    results["function"] = obs::Json(predict::functionKindName(kind));
    results["depth"] = obs::Json(depth);
    obs::Json &modes = results["modes"];
    modes = obs::Json::object();

    std::vector<sweep::FigurePoint> pid_on, pid_off;
    for (auto mode : {predict::UpdateMode::Direct,
                      predict::UpdateMode::Forwarded,
                      predict::UpdateMode::Ordered}) {
        auto points = sweep::evaluateFigure(suite, series, kind, depth,
                                            mode, ctx.threads(),
                                            ctx.kernel());
        printSeries(predict::updateModeName(mode), points);
        writeSeriesCsv(predict::functionKindName(kind),
                       predict::updateModeName(mode), points);
        obs::Json &pts = modes[predict::updateModeName(mode)];
        pts = obs::Json::array();
        for (const auto &pt : points) {
            obs::Json row = obs::Json::object();
            row["index"] = obs::Json(pt.label);
            row["sensitivity"] = obs::Json(pt.sensitivity);
            row["pvp"] = obs::Json(pt.pvp);
            pts.append(std::move(row));
        }
        if (mode == predict::UpdateMode::Direct) {
            for (const auto &pt : points)
                (pt.index.usePid ? pid_on : pid_off).push_back(pt);
        }
    }

    // Shape check (Section 5.4.2): pid indexing tends to lift both
    // metrics; pc-only indexing is the all-around bad performer.
    auto mean = [](const std::vector<sweep::FigurePoint> &v,
                   bool use_pvp) {
        double s = 0;
        for (const auto &p : v)
            s += use_pvp ? p.pvp : p.sensitivity;
        return v.empty() ? 0.0 : s / v.size();
    };
    std::printf("Shape checks (direct update):\n");
    std::printf("  mean sens with pid %.3f vs without %.3f -> %s\n",
                mean(pid_on, false), mean(pid_off, false),
                mean(pid_on, false) >= mean(pid_off, false) ? "yes"
                                                            : "NO");
    std::printf("  mean pvp  with pid %.3f vs without %.3f -> %s\n",
                mean(pid_on, true), mean(pid_off, true),
                mean(pid_on, true) >= mean(pid_off, true) ? "yes"
                                                          : "NO");
    return ctx.finish();
}

} // namespace ccp::benchutil

#endif // CCP_BENCH_FIGURE_COMMON_HH
