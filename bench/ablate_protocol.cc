/**
 * @file
 * Ablation A5: the coherence protocol under the predictors — MSI (the
 * paper's DirNB-style setting) versus MESI, whose silent E->M
 * upgrades remove the read-then-write coherence store misses from the
 * event stream entirely.
 *
 * Expected: MESI produces no more events than MSI per benchmark
 * (private read-modify-write data stops generating zero-reader
 * events), prevalence rises slightly (the removed events were
 * unshared), and the baseline predictor's quality is roughly
 * unchanged — the protocol choice moves the event *population*, not
 * the predictability of true sharing.
 */

#include "bench_util.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("ablate_protocol", argc, argv);

    auto baseline = sweep::parseScheme("last()1")->scheme;

    std::printf("Ablation: MSI vs MESI under the workloads\n\n");
    Table t({"benchmark", "events(MSI)", "events(MESI)", "prev%(MSI)",
             "prev%(MESI)", "sens(MSI)", "sens(MESI)"});

    bool monotone = true;
    for (const auto &name : workloads::workloadNames()) {
        workloads::WorkloadParams params;
        params.seed = envSeed();
        params.scale = envScale() * 0.5; // both protocols: halve work
        mem::MachineConfig msi_cfg, mesi_cfg;
        mesi_cfg.protocol = mem::ProtocolKind::MESI;

        auto msi = workloads::generateTrace(name, params, msi_cfg);
        auto mesi = workloads::generateTrace(name, params, mesi_cfg);

        auto msi_conf = predict::evaluateTrace(
            msi, baseline, predict::UpdateMode::Direct);
        auto mesi_conf = predict::evaluateTrace(
            mesi, baseline, predict::UpdateMode::Direct);

        monotone &= mesi.storeMisses() <= msi.storeMisses();
        t.addRow({name, fmtU(msi.storeMisses()),
                  fmtU(mesi.storeMisses()),
                  fmt(100.0 * msi.prevalence()),
                  fmt(100.0 * mesi.prevalence()),
                  fmt(msi_conf.sensitivity(), 3),
                  fmt(mesi_conf.sensitivity(), 3)});
    }
    t.print();

    std::printf("\nShape check:\n");
    std::printf("  MESI never adds coherence store misses: %s\n",
                monotone ? "yes" : "NO");
    return ctx.finish();
}
