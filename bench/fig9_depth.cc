/**
 * @file
 * Reproduces Figure 9: the effect of history depth (2 versus 4) on
 * intersection, union, and PAs predictors under direct update.
 *
 * Expected shape (Section 5.4.3): deeper history raises intersection
 * PVP while lowering its sensitivity; the opposite for union; PAs is
 * essentially flat (not enough events to train deep patterns).
 */

#include "bench_util.hh"
#include "sweep/figures.hh"

namespace {

using namespace ccp;
using namespace ccp::benchutil;

void
runPanel(const std::vector<trace::SharingTrace> &suite,
         obs::Json &results, const char *title,
         predict::FunctionKind kind,
         const std::vector<predict::IndexSpec> &series,
         unsigned threads)
{
    auto d2 = sweep::evaluateFigure(suite, series, kind, 2,
                                    predict::UpdateMode::Direct,
                                    threads);
    auto d4 = sweep::evaluateFigure(suite, series, kind, 4,
                                    predict::UpdateMode::Direct,
                                    threads);

    std::printf("%s:\n", title);
    Table t({"index(addr/dir/pc/pid)", "pvp(2)", "sens(2)", "pvp(4)",
             "sens(4)"});
    double dpvp = 0, dsens = 0;
    for (std::size_t i = 0; i < d2.size(); ++i) {
        t.addRow({d2[i].label, fmt(d2[i].pvp, 3),
                  fmt(d2[i].sensitivity, 3), fmt(d4[i].pvp, 3),
                  fmt(d4[i].sensitivity, 3)});
        dpvp += d4[i].pvp - d2[i].pvp;
        dsens += d4[i].sensitivity - d2[i].sensitivity;
    }
    t.print();
    std::printf("mean depth-4 minus depth-2: pvp %+.3f, sensitivity "
                "%+.3f\n\n",
                dpvp / d2.size(), dsens / d2.size());

    obs::Json &panel = results[predict::functionKindName(kind)];
    panel["mean_pvp_delta"] = obs::Json(dpvp / d2.size());
    panel["mean_sensitivity_delta"] = obs::Json(dsens / d2.size());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx("fig9_depth", argc, argv);
    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);
    std::printf("Figure 9: history depth 2 vs 4, direct update\n\n");

    obs::Json &results = ctx.results();
    runPanel(suite, results, "INTERSECTION (16-bit max index)",
             predict::FunctionKind::Inter, sweep::figureIndexSeries16(),
             ctx.threads());
    runPanel(suite, results, "UNION (16-bit max index)",
             predict::FunctionKind::Union, sweep::figureIndexSeries16(),
             ctx.threads());
    runPanel(suite, results, "PAs (12-bit max index)",
             predict::FunctionKind::PAs, sweep::figureIndexSeries12(),
             ctx.threads());

    std::printf("Expected: intersection pvp up / sens down with depth; "
                "union the reverse; PAs nearly flat.\n");
    return ctx.finish();
}
