/**
 * @file
 * Ablation A6: machine-size scaling.  The paper evaluates a 16-node
 * machine only; here the suite runs at 8, 16 and 32 nodes and we
 * track how prevalence and the baseline/intersection predictors
 * respond.
 *
 * Expected: prevalence (reader bits over N x events) falls as N grows
 * — the absolute reader count per version is roughly fixed by the
 * algorithmic sharing structure while the decision denominator grows —
 * and the wide-sharing components (barnes' tree top, water's position
 * window) partially track N, so the decline is less than 1/N.
 * Predictor quality degrades gracefully: more potential readers, same
 * stable cores.
 */

#include "bench_util.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("ablate_scaling", argc, argv);

    auto baseline = sweep::parseScheme("last()1")->scheme;
    auto inter = sweep::parseScheme("inter(pid+pc8)2")->scheme;

    std::printf("Ablation: machine-size scaling (suite averages)\n\n");
    Table t({"nodes", "events", "prevalence%", "last:sens", "last:pvp",
             "inter2:sens", "inter2:pvp"});

    for (unsigned n : {8u, 16u, 32u}) {
        workloads::WorkloadParams params;
        params.seed = envSeed();
        params.scale = envScale() * 0.5;
        params.nNodes = n;
        mem::MachineConfig cfg;
        cfg.nNodes = n;
        cfg.torusWidth = 4;

        std::uint64_t events = 0;
        double prev = 0, lsens = 0, lpvp = 0, isens = 0, ipvp = 0;
        for (const auto &name : workloads::workloadNames()) {
            auto tr = workloads::generateTrace(name, params, cfg);
            events += tr.storeMisses();
            prev += tr.prevalence();
            auto lc = predict::evaluateTrace(
                tr, baseline, predict::UpdateMode::Direct);
            auto ic = predict::evaluateTrace(
                tr, inter, predict::UpdateMode::Direct);
            lsens += lc.sensitivity();
            lpvp += lc.pvp();
            isens += ic.sensitivity();
            ipvp += ic.pvp();
        }
        double k = 1.0 / workloads::workloadNames().size();
        t.addRow({std::to_string(n), fmtU(events),
                  fmt(100.0 * prev * k), fmt(lsens * k, 3),
                  fmt(lpvp * k, 3), fmt(isens * k, 3),
                  fmt(ipvp * k, 3)});
    }
    t.print();

    std::printf("\nExpected: prevalence falls with machine size "
                "(slower than 1/N); predictor quality degrades "
                "gracefully.\n");
    return ctx.finish();
}
