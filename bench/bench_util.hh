/**
 * @file
 * Shared plumbing for the reproduction benches: one-time trace
 * generation with on-disk caching (generate once, sweep many times —
 * the paper's own methodology), a fixed-width table printer, and the
 * paper's published numbers for side-by-side comparison.
 *
 * Environment knobs:
 *   CCP_TRACE_DIR  cache directory (default ./ccp_traces)
 *   CCP_SCALE      workload iteration scale (default 1.0)
 *   CCP_SEED       workload seed (default 0x5eed)
 */

#ifndef CCP_BENCH_BENCH_UTIL_HH
#define CCP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/registry.hh"

namespace ccp::benchutil {

inline double
envScale()
{
    const char *s = std::getenv("CCP_SCALE");
    return s ? std::atof(s) : 1.0;
}

inline std::uint64_t
envSeed()
{
    const char *s = std::getenv("CCP_SEED");
    return s ? std::strtoull(s, nullptr, 0) : 0x5eed;
}

inline std::string
traceDir()
{
    const char *d = std::getenv("CCP_TRACE_DIR");
    return d ? d : "ccp_traces";
}

/**
 * Load the seven-benchmark suite from the trace cache, generating and
 * saving any missing traces.  All benches share the cache, so the
 * suite is generated exactly once per (seed, scale).
 */
inline std::vector<trace::SharingTrace>
loadOrGenerateSuite()
{
    const double scale = envScale();
    const std::uint64_t seed = envSeed();
    const std::string dir = traceDir();
    std::filesystem::create_directories(dir);

    std::vector<trace::SharingTrace> suite;
    for (const auto &name : workloads::workloadNames()) {
        std::ostringstream file;
        file << dir << '/' << name << "_s" << std::hex << seed
             << std::dec << "_x" << scale << ".trace";

        trace::SharingTrace tr;
        if (tr.loadFile(file.str())) {
            suite.push_back(std::move(tr));
            continue;
        }
        std::fprintf(stderr, "[bench] generating %s (scale %.2f)...\n",
                     name.c_str(), scale);
        workloads::WorkloadParams params;
        params.seed = seed;
        params.scale = scale;
        tr = workloads::generateTrace(name, params);
        if (!tr.saveFile(file.str()))
            std::fprintf(stderr, "[bench] warning: cannot cache %s\n",
                         file.str().c_str());
        suite.push_back(std::move(tr));
    }
    return suite;
}

/** Minimal fixed-width column table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s%s", static_cast<int>(width[c]),
                            cells[c].c_str(),
                            c + 1 == cells.size() ? "\n" : "  ");
        };
        line(headers_);
        std::size_t total = headers_.size() * 2;
        for (auto w : width)
            total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &row : rows_)
            line(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
fmtU(std::uint64_t v)
{
    return std::to_string(v);
}

/** The paper's Table 5 rows (per benchmark). */
struct PaperTable5
{
    const char *name;
    std::uint64_t maxStaticStores;
    std::uint64_t maxPredictedStores;
    std::uint64_t blocksTouched;
    std::uint64_t storeMisses;
};

inline const std::vector<PaperTable5> &
paperTable5()
{
    static const std::vector<PaperTable5> rows = {
        {"barnes", 164, 61, 22241, 161911},
        {"em3d", 35, 23, 51889, 262451},
        {"gauss", 21, 13, 32946, 129528},
        {"mp3d", 160, 71, 30182, 212828},
        {"ocean", 380, 230, 239861, 2871656},
        {"unstruct", 69, 67, 2832, 633607},
        {"water", 69, 27, 2896, 172925},
    };
    return rows;
}

/** The paper's Table 6 rows. */
struct PaperTable6
{
    const char *name;
    std::uint64_t sharingEvents;
    std::uint64_t sharingDecisions;
    double prevalencePct;
};

inline const std::vector<PaperTable6> &
paperTable6()
{
    static const std::vector<PaperTable6> rows = {
        {"barnes", 391085, 2590576, 15.10},
        {"em3d", 133926, 4199216, 3.19},
        {"gauss", 205666, 2072448, 9.92},
        {"mp3d", 306990, 3405248, 9.02},
        {"ocean", 983085, 45946496, 2.14},
        {"unstruct", 1300764, 10137712, 12.83},
        {"water", 335482, 2766800, 12.13},
    };
    return rows;
}

/** The paper's Table 7 rows (prior schemes). */
struct PaperTable7
{
    const char *description;
    const char *scheme;
    const char *update;
    int sizeLog2;
    double sensitivity;
    double pvp;
};

inline const std::vector<PaperTable7> &
paperTable7()
{
    static const std::vector<PaperTable7> rows = {
        {"baseline-last", "last()1", "direct", 0, 0.57, 0.66},
        {"Kaxiras-instr.-last", "last(pid+pc8)1", "direct", 16, 0.57,
         0.66},
        {"Kaxiras-instr.-inter.", "inter(pid+pc8)2", "direct", 17, 0.45,
         0.80},
        {"Lai-address+pid-last", "last(pid+mem8)1", "direct", 16, 0.57,
         0.66},
        {"Kaxiras-instr.-last", "last(pid+pc8)1", "forwarded", 16, 0.51,
         0.61},
        {"Kaxiras-instr.-inter.", "inter(pid+pc8)2", "forwarded", 17,
         0.43, 0.80},
        {"Lai-address+pid-last", "last(pid+mem8)1", "forwarded", 16,
         0.55, 0.66},
    };
    return rows;
}

/** One row of the paper's top-10 Tables 8-11. */
struct PaperTopTen
{
    const char *scheme;
    int sizeLog2;
    double pvp;
    double sens;
};

inline const std::vector<PaperTopTen> &
paperTable8()
{
    static const std::vector<PaperTopTen> rows = {
        {"inter(pid+add6)4", 16, 0.93, 0.32},
        {"inter(pid+pc2+add6)4", 18, 0.92, 0.34},
        {"inter(pid+add8)4", 18, 0.92, 0.32},
        {"inter(pid+pc4+add6)4", 20, 0.91, 0.36},
        {"inter(pid+add10)4", 20, 0.91, 0.33},
        {"inter(pid+pc2+add8)4", 20, 0.91, 0.33},
        {"inter(pid+add4)4", 14, 0.90, 0.32},
        {"inter(pid+pc6+add6)4", 22, 0.90, 0.37},
        {"inter(pid+add8)3", 18, 0.90, 0.36},
        {"inter(pid+pc4+add4)4", 18, 0.90, 0.36},
    };
    return rows;
}

inline const std::vector<PaperTopTen> &
paperTable9()
{
    static const std::vector<PaperTopTen> rows = {
        {"inter(pid+pc8+add6)4", 24, 0.94, 0.36},
        {"inter(pid+pc6+add6)4", 22, 0.94, 0.36},
        {"inter(pid+pc6+dir+add4)4", 24, 0.94, 0.34},
        {"inter(pid+pc10+add4)4", 24, 0.93, 0.37},
        {"inter(pid+pc4+dir+add4)4", 22, 0.93, 0.34},
        {"inter(pid+pc4+add6)4", 20, 0.93, 0.35},
        {"inter(pid+pc6+add8)4", 24, 0.93, 0.35},
        {"inter(pid+pc8+add4)4", 22, 0.93, 0.36},
        {"inter(pid+pc4+dir+add6)4", 24, 0.93, 0.33},
        {"inter(pid+pc6+add4)4", 20, 0.93, 0.36},
    };
    return rows;
}

inline const std::vector<PaperTopTen> &
paperTable10()
{
    static const std::vector<PaperTopTen> rows = {
        {"union(dir+add14)4", 24, 0.47, 0.68},
        {"union(add16)4", 22, 0.45, 0.67},
        {"union(dir+add12)4", 22, 0.45, 0.67},
        {"union(dir+add10)4", 20, 0.42, 0.67},
        {"union(dir+add2)4", 12, 0.39, 0.67},
        {"union(dir+add8)4", 18, 0.41, 0.67},
        {"union(pc2+dir+add6)4", 18, 0.39, 0.67},
        {"union(add14)4", 20, 0.42, 0.67},
        {"union(pc4+dir)4", 14, 0.40, 0.66},
        {"union(pc2+dir+add2)4", 14, 0.40, 0.66},
    };
    return rows;
}

inline const std::vector<PaperTopTen> &
paperTable11()
{
    static const std::vector<PaperTopTen> rows = {
        {"union(dir+add14)4", 24, 0.47, 0.68},
        {"union(pid+dir+add4)4", 18, 0.46, 0.68},
        {"union(pid+dir+add2)4", 16, 0.46, 0.68},
        {"union(add16)4", 22, 0.45, 0.67},
        {"union(dir+add12)4", 22, 0.45, 0.67},
        {"union(dir+add10)4", 20, 0.42, 0.67},
        {"union(dir+add2)4", 12, 0.39, 0.67},
        {"union(pid+dir+add6)4", 20, 0.47, 0.67},
        {"union(dir+add8)4", 18, 0.41, 0.67},
        {"union(pid+add6)4", 16, 0.43, 0.67},
    };
    return rows;
}

} // namespace ccp::benchutil

#endif // CCP_BENCH_BENCH_UTIL_HH
