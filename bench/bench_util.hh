/**
 * @file
 * Shared plumbing for the reproduction benches: one-time trace
 * generation with on-disk caching (generate once, sweep many times —
 * the paper's own methodology), a fixed-width table printer, and the
 * paper's published numbers for side-by-side comparison.
 *
 * Also here: BenchContext, the shared command-line front end of every
 * bench/figure binary.  It understands
 *
 *   --report <path>   write a structured JSON run report (machine
 *                     config, suite + protocol counters, screening
 *                     metrics, per-phase timings) on exit
 *   --log <level>     override CCP_LOG (quiet|warn|info|debug)
 *   --threads <n>     worker threads for scheme sweeps (default: all
 *                     hardware threads; 1 = the sequential path; 0 is
 *                     the same as the default)
 *   --kernel <k>      sweep evaluation kernel: "batched" (the
 *                     event-major default), "simd" (the SoA
 *                     bit-parallel lanes, docs/KERNELS.md), or
 *                     "reference" (the per-scheme oracle); output is
 *                     byte-identical either way
 *
 * Tracing flags (docs/OBSERVABILITY.md, "Tracing & profiling"):
 *   --trace-out <path>  record execution spans (thread-pool chunks,
 *                       batch kernels, checkpoint I/O, trace-cache
 *                       load) and write Chrome trace-event JSON there
 *                       on exit — load it in Perfetto or
 *                       chrome://tracing
 *   --perf-counters     additionally sample hardware counters
 *                       (cycles, instructions, cache & branch misses)
 *                       per span; needs --trace-out and a kernel that
 *                       allows perf_event_open (silently no-op
 *                       otherwise)
 *
 * Resilience flags (any of them routes the sweep through
 * sweep::ResilientRunner — see docs/RESILIENCE.md):
 *   --checkpoint <base>        periodic atomic checkpoints; the file
 *                              written is <base>.<key>.ckpt, keyed on
 *                              trace/scheme/kernel identity
 *   --resume                   skip scheme batches already covered by
 *                              a valid checkpoint
 *   --checkpoint-interval <s>  seconds between checkpoint writes
 *                              (default 30; 0 = after every batch)
 *   --mem-budget <bytes>       cap on total predictor state per batch;
 *                              accepts suffixes K/M/G (e.g. 512M);
 *                              oversized schemes are skipped and
 *                              reported, never silently dropped
 *   --batch-deadline <s>       advisory per-batch wall-clock deadline;
 *                              overruns are recorded, results kept
 *
 * Distributed-sweep flags (top-10 benches only — docs/RESILIENCE.md,
 * "Distributed sweeps"):
 *   --shards <K>           partition the scheme list into K shards by
 *                          canonical-name hash (sweep/shard.hh)
 *   --shard-id <i>         worker mode: evaluate only shard i's
 *                          schemes, checkpoint them, print no table
 *                          (needs --shards and --checkpoint)
 *   --orchestrate <W>      supervisor mode: spawn W concurrent worker
 *                          processes over the K shards, retry/
 *                          quarantine failures, merge, and print the
 *                          same table a single-process run prints —
 *                          byte-identical wherever shards completed
 *   --worker-deadline <s>  per-worker liveness deadline: a worker
 *                          whose shard checkpoint stops advancing for
 *                          s seconds is SIGTERMed, then SIGKILLed
 *   --worker-retries <n>   launches per shard before quarantine
 *                          (default 3)
 *
 * Environment knobs:
 *   CCP_TRACE_DIR  cache directory (default ./ccp_traces)
 *   CCP_SCALE      workload iteration scale (default 1.0)
 *   CCP_SEED       workload seed (default 0x5eed)
 *   CCP_LOG        log level (quiet|warn|info|debug, default info)
 */

#ifndef CCP_BENCH_BENCH_UTIL_HH
#define CCP_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/mem_budget.hh"
#include "common/parse.hh"
#include "common/thread_pool.hh"
#include "mem/protocol.hh"
#include "obs/perf.hh"
#include "obs/report.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "sweep/orchestrator.hh"
#include "sweep/parallel.hh"
#include "sweep/runner.hh"
#include "sweep/search.hh"
#include "sweep/shard.hh"
#include "trace/format.hh"
#include "trace/trace.hh"
#include "workloads/registry.hh"

namespace ccp::benchutil {

inline double
envScale()
{
    const char *s = std::getenv("CCP_SCALE");
    if (!s)
        return 1.0;
    double v = 0.0;
    if (!parseDouble(s, v) || v <= 0.0)
        ccp_fatal("bad CCP_SCALE value '", s,
                  "' (want a positive number)");
    return v;
}

inline std::uint64_t
envSeed()
{
    const char *s = std::getenv("CCP_SEED");
    if (!s)
        return 0x5eed;
    // Base 0: plain decimal, 0x hex, or leading-0 octal — but the
    // whole string must parse.  atoi-style "take the prefix, map
    // garbage to 0" would silently collapse distinct-looking seeds
    // onto one trace cache key and defeat deterministic repro.
    std::uint64_t v = 0;
    if (!parseU64(s, v, 0))
        ccp_fatal("bad CCP_SEED value '", s,
                  "' (want an unsigned integer; 0x hex ok)");
    return v;
}

inline std::string
traceDir()
{
    const char *d = std::getenv("CCP_TRACE_DIR");
    return d ? d : "ccp_traces";
}

/**
 * Cache key of one suite trace: an FNV-1a hash over everything that
 * determines the generated events — trace format version, workload
 * name, seed, exact scale bits, and the default machine geometry the
 * suite is generated with.  Any parameter change (or a format bump)
 * changes the filename, so stale-parameter traces are never served;
 * they are simply regenerated under the new key.
 */
inline std::uint64_t
traceCacheKey(const std::string &name, std::uint64_t seed,
              double scale)
{
    trace::Fnv1a h;
    auto word = [&h](std::uint64_t v) { h.update(&v, sizeof(v)); };
    // Bump alongside traceFormatVersion when the *generator* changes
    // behaviour without a format change.
    constexpr std::uint64_t cacheKeySchema = 1;
    word(cacheKeySchema);
    word(trace::traceFormatVersion);
    h.update(name.data(), name.size());
    h.update("\0", 1);
    word(seed);
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t scale_bits = 0;
    std::memcpy(&scale_bits, &scale, sizeof(scale_bits));
    word(scale_bits);
    const mem::MachineConfig c;
    word(c.nNodes);
    word(static_cast<std::uint64_t>(c.protocol));
    word(static_cast<std::uint64_t>(c.placement));
    word(c.l1.sizeBytes);
    word(c.l1.assoc);
    word(c.l2.sizeBytes);
    word(c.l2.assoc);
    word(c.torusWidth);
    word(blockShift);
    return h.digest();
}

/** Cache filename for one suite trace: `<name>_<key16>.trace`. */
inline std::string
traceCachePath(const std::string &dir, const std::string &name,
               std::uint64_t seed, double scale)
{
    char key[17];
    std::snprintf(key, sizeof(key), "%016llx",
                  static_cast<unsigned long long>(
                      traceCacheKey(name, seed, scale)));
    return dir + "/" + name + "_" + key + ".trace";
}

/**
 * Load the seven-benchmark suite from the trace cache, generating and
 * saving any missing traces.  All benches share the cache, so the
 * suite is generated exactly once per configuration (the filename is
 * keyed on a workload-config hash, see traceCacheKey()).
 *
 * Robustness: a cached file that fails validation (truncated, bad
 * checksum, old format version) is counted under
 * `bench.traces_corrupt_rejected`, deleted, and regenerated; saves go
 * through SharingTrace::saveFile's atomic temp-file + rename(), so
 * concurrent benches sharing CCP_TRACE_DIR never read partial files.
 */
inline std::vector<trace::SharingTrace>
loadOrGenerateSuite()
{
    const double scale = envScale();
    const std::uint64_t seed = envSeed();
    const std::string dir = traceDir();
    std::filesystem::create_directories(dir);

    auto &reg = obs::StatsRegistry::root();
    CCP_TRACE_SPAN("bench", "bench.suite_load");
    obs::ScopedTimer suite_timer(reg, "bench.suite_load_seconds");

    std::vector<trace::SharingTrace> suite;
    for (const auto &name : workloads::workloadNames()) {
        const std::string file =
            traceCachePath(dir, name, seed, scale);

        trace::SharingTrace tr;
        obs::Stopwatch load_watch;
        if (tr.loadFile(file)) {
            reg.summary("bench.trace_load_seconds")
                .add(load_watch.elapsedSec());
            ++reg.counter("bench.traces_cached");
            suite.push_back(std::move(tr));
            continue;
        }
        if (std::filesystem::exists(file)) {
            // Present but unloadable: torn write, bit rot, or a stale
            // format version.  Drop it and regenerate.
            ++reg.counter("bench.traces_corrupt_rejected");
            ccp_warn("trace cache: rejecting invalid file ", file,
                     " (regenerating)");
            std::error_code ec;
            std::filesystem::remove(file, ec);
        }
        // Progress goes to stderr so stdout stays a clean table.
        if (logLevel() >= LogLevel::Info)
            std::fprintf(stderr, "[bench] generating %s (scale %.2f)"
                         "...\n", name.c_str(), scale);
        obs::ScopedTimer gen_timer(reg, "bench.trace_gen_seconds");
        workloads::WorkloadParams params;
        params.seed = seed;
        params.scale = scale;
        tr = workloads::generateTrace(name, params);
        gen_timer.stop();
        ++reg.counter("bench.traces_generated");
        if (!tr.saveFile(file))
            ccp_warn("cannot cache trace at ", file);
        suite.push_back(std::move(tr));
    }
    return suite;
}

/** Minimal fixed-width column table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s%s", static_cast<int>(width[c]),
                            cells[c].c_str(),
                            c + 1 == cells.size() ? "\n" : "  ");
        };
        line(headers_);
        std::size_t total = headers_.size() * 2;
        for (auto w : width)
            total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &row : rows_)
            line(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
fmtU(std::uint64_t v)
{
    return std::to_string(v);
}

/** Machine geometry as a run-report JSON object. */
inline obs::Json
machineConfigJson(const mem::MachineConfig &c)
{
    obs::Json j = obs::Json::object();
    j["nodes"] = obs::Json(c.nNodes);
    j["protocol"] =
        obs::Json(c.protocol == mem::ProtocolKind::MESI ? "MESI"
                                                        : "MSI");
    j["placement"] = obs::Json(
        c.placement == mem::PlacementPolicy::FirstTouch
            ? "first-touch"
            : "interleaved");
    j["l1_bytes"] = obs::Json(c.l1.sizeBytes);
    j["l1_assoc"] = obs::Json(c.l1.assoc);
    j["l2_bytes"] = obs::Json(c.l2.sizeBytes);
    j["l2_assoc"] = obs::Json(c.l2.assoc);
    j["torus_width"] = obs::Json(c.torusWidth);
    return j;
}

/** One trace's run-level metadata (Table 5/6 + protocol counters). */
inline obs::Json
traceMetaJson(const trace::SharingTrace &tr)
{
    const trace::TraceMeta &m = tr.meta();
    obs::Json j = obs::Json::object();
    j["name"] = obs::Json(tr.name());
    j["nodes"] = obs::Json(tr.nNodes());
    j["store_misses"] = obs::Json(tr.storeMisses());
    j["decisions"] = obs::Json(tr.decisions());
    j["sharing_events"] = obs::Json(tr.sharingEvents());
    j["prevalence"] = obs::Json(tr.prevalence());
    j["total_ops"] = obs::Json(m.totalOps);
    j["blocks_touched"] = obs::Json(m.blocksTouched);
    j["max_static_stores"] = obs::Json(m.maxStaticStoresPerNode);
    j["max_predicted_stores"] = obs::Json(m.maxPredictedStoresPerNode);
    j["reads"] = obs::Json(m.reads);
    j["writes"] = obs::Json(m.writes);
    j["read_misses"] = obs::Json(m.readMisses);
    j["write_misses"] = obs::Json(m.writeMisses);
    j["write_faults"] = obs::Json(m.writeFaults);
    j["silent_upgrades"] = obs::Json(m.silentUpgrades);
    j["invalidations"] = obs::Json(m.invalidationsSent);
    j["downgrades"] = obs::Json(m.downgrades);
    j["interventions"] = obs::Json(m.interventions);
    return j;
}

/** Confusion counts + the derived screening ratios. */
inline obs::Json
confusionJson(const predict::Confusion &c)
{
    obs::Json j = obs::Json::object();
    j["tp"] = obs::Json(c.tp);
    j["fp"] = obs::Json(c.fp);
    j["tn"] = obs::Json(c.tn);
    j["fn"] = obs::Json(c.fn);
    j["prevalence"] = obs::Json(c.prevalence());
    j["sensitivity"] = obs::Json(c.sensitivity());
    j["pvp"] = obs::Json(c.pvp());
    j["specificity"] = obs::Json(c.specificity());
    return j;
}

/** One scheme's suite evaluation: spec, cost, and metrics. */
inline obs::Json
suiteResultJson(const predict::SuiteResult &res, unsigned n_nodes = 16)
{
    obs::Json j = obs::Json::object();
    j["scheme"] = obs::Json(sweep::formatScheme(res.scheme));
    j["update"] = obs::Json(predict::updateModeName(res.mode));
    j["size_bits"] = obs::Json(res.scheme.sizeBits(n_nodes));
    j["depth"] = obs::Json(res.scheme.depth);
    j["avg_sensitivity"] = obs::Json(res.avgSensitivity());
    j["avg_pvp"] = obs::Json(res.avgPvp());
    j["avg_prevalence"] = obs::Json(res.avgPrevalence());
    j["pooled"] = confusionJson(res.pooled);
    obs::Json &per = j["per_trace"];
    per = obs::Json::array();
    for (const auto &tr : res.perTrace) {
        obs::Json row = obs::Json::object();
        row["trace"] = obs::Json(tr.traceName);
        row["confusion"] = confusionJson(tr.confusion);
        per.append(std::move(row));
    }
    return j;
}

/**
 * Whether a bench can run as a shard worker / shard supervisor.  Only
 * drivers whose sweep is a pure function of (suite, scheme list) can
 * — the top-10 tables opt in; everything else rejects the shard flags
 * loudly instead of silently sweeping the wrong space.
 */
enum class Sharding : bool
{
    Unsupported,
    Supported,
};

/**
 * Shared front end of the bench/figure binaries: parses the common
 * flags, stamps the config section, and writes the run report (if
 * requested) in finish().
 */
class BenchContext
{
  public:
    BenchContext(std::string tool, int argc, char **argv,
                 Sharding sharding = Sharding::Unsupported)
        : report_(std::move(tool))
    {
        if (argc > 0 && argv[0] && argv[0][0] != '\0')
            argv0_ = argv[0];
        // Surface a bad CCP_LOG now; the lazy init would otherwise
        // only warn the first time something logs.
        logLevel();
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            std::string value;
            if (takesValue(arg, "--report", i, argc, argv, value)) {
                reportPath_ = value;
            } else if (takesValue(arg, "--log", i, argc, argv,
                                  value)) {
                LogLevel level = LogLevel::Info;
                if (!parseLogLevel(value, level))
                    ccp_fatal("bad --log level '", value,
                              "' (want quiet|warn|info|debug)");
                setLogLevel(level);
            } else if (takesValue(arg, "--threads", i, argc, argv,
                                  value)) {
                std::uint64_t n = 0;
                if (!parseU64InRange(value, n, 4096))
                    ccp_fatal("bad --threads value '", value,
                              "' (want 0..4096; 0 = all hardware "
                              "threads)");
                threads_ = static_cast<unsigned>(n);
            } else if (takesValue(arg, "--kernel", i, argc, argv,
                                  value)) {
                if (!sweep::parseSweepKernel(value, kernel_))
                    ccp_fatal("bad --kernel value '", value,
                              "' (want batched|simd|reference)");
            } else if (takesValue(arg, "--checkpoint", i, argc, argv,
                                  value)) {
                if (value.empty())
                    ccp_fatal("--checkpoint needs a non-empty path");
                checkpointPath_ = value;
            } else if (arg == "--resume") {
                resume_ = true;
            } else if (takesValue(arg, "--checkpoint-interval", i,
                                  argc, argv, value)) {
                double sec = 0.0;
                if (!parseDouble(value, sec) || sec < 0)
                    ccp_fatal("bad --checkpoint-interval '", value,
                              "' (want seconds >= 0)");
                checkpointIntervalSec_ = sec;
            } else if (takesValue(arg, "--mem-budget", i, argc, argv,
                                  value)) {
                std::uint64_t bytes = 0;
                if (!parseByteSize(value, bytes) || bytes == 0)
                    ccp_fatal("bad --mem-budget '", value,
                              "' (want bytes, suffixes K/M/G ok)");
                memBudgetBytes_ = bytes;
            } else if (takesValue(arg, "--batch-deadline", i, argc,
                                  argv, value)) {
                double sec = 0.0;
                if (!parseDouble(value, sec) || sec < 0)
                    ccp_fatal("bad --batch-deadline '", value,
                              "' (want seconds >= 0)");
                batchDeadlineSec_ = sec;
            } else if (takesValue(arg, "--shards", i, argc, argv,
                                  value)) {
                std::uint64_t n = 0;
                if (!parseU64InRange(value, n, 4096) || n == 0)
                    ccp_fatal("bad --shards value '", value,
                              "' (want 1..4096)");
                shards_ = static_cast<unsigned>(n);
            } else if (takesValue(arg, "--shard-id", i, argc, argv,
                                  value)) {
                std::uint64_t n = 0;
                if (!parseU64InRange(value, n, 4095))
                    ccp_fatal("bad --shard-id value '", value,
                              "' (want 0..4095)");
                shardId_ = static_cast<unsigned>(n);
                shardWorker_ = true;
            } else if (takesValue(arg, "--orchestrate", i, argc, argv,
                                  value)) {
                std::uint64_t n = 0;
                if (!parseU64InRange(value, n, 4096) || n == 0)
                    ccp_fatal("bad --orchestrate value '", value,
                              "' (want 1..4096 concurrent workers)");
                orchestrateWorkers_ = static_cast<unsigned>(n);
            } else if (takesValue(arg, "--worker-deadline", i, argc,
                                  argv, value)) {
                double sec = 0.0;
                if (!parseDouble(value, sec) || sec < 0)
                    ccp_fatal("bad --worker-deadline '", value,
                              "' (want seconds >= 0)");
                workerDeadlineSec_ = sec;
            } else if (takesValue(arg, "--worker-retries", i, argc,
                                  argv, value)) {
                std::uint64_t n = 0;
                if (!parseU64InRange(value, n, 1000) || n == 0)
                    ccp_fatal("bad --worker-retries '", value,
                              "' (want 1..1000 attempts per shard)");
                workerRetries_ = static_cast<unsigned>(n);
            } else if (takesValue(arg, "--trace-out", i, argc, argv,
                                  value)) {
                if (value.empty())
                    ccp_fatal("--trace-out needs a non-empty path");
                traceOutPath_ = value;
            } else if (arg == "--perf-counters") {
                perfCounters_ = true;
            } else if (arg == "--help" || arg == "-h") {
                std::printf(
                    "usage: %s [--report <out.json>] "
                    "[--log quiet|warn|info|debug] [--threads <n>] "
                    "[--kernel batched|simd|reference] "
                    "[--checkpoint <base>] [--resume] "
                    "[--checkpoint-interval <sec>] "
                    "[--mem-budget <bytes>] "
                    "[--batch-deadline <sec>] "
                    "[--trace-out <trace.json>] [--perf-counters] "
                    "[--shards <K> (--shard-id <i> | "
                    "--orchestrate <W>)] [--worker-deadline <sec>] "
                    "[--worker-retries <n>]\n",
                    report_.tool().c_str());
                std::exit(0);
            } else {
                ccp_fatal("unknown argument '", arg,
                          "' (try --help)");
            }
        }

        if ((shards_ > 0 || shardWorker_ || orchestrateWorkers_ > 0) &&
            sharding == Sharding::Unsupported)
            ccp_fatal("this bench does not support sharded sweeps "
                      "(--shards/--shard-id/--orchestrate are for the "
                      "top-10 tables)");
        if ((shardWorker_ || orchestrateWorkers_ > 0) && shards_ == 0)
            ccp_fatal("--shard-id/--orchestrate need --shards <K>");
        if (shardWorker_ && orchestrateWorkers_ > 0)
            ccp_fatal("--shard-id (worker) and --orchestrate "
                      "(supervisor) are mutually exclusive");
        if (shardWorker_ && shardId_ >= shards_)
            ccp_fatal("--shard-id ", shardId_, " out of range for "
                      "--shards ", shards_);
        if ((shardWorker_ || orchestrateWorkers_ > 0) &&
            checkpointPath_.empty())
            ccp_fatal("sharded sweeps need --checkpoint <base>: shard "
                      "CCPC checkpoints are the merge exchange "
                      "format");
        if (shards_ > 0 && !shardWorker_ && orchestrateWorkers_ == 0)
            ccp_fatal("--shards needs --shard-id <i> (worker) or "
                      "--orchestrate <W> (supervisor)");

        if (resume_ && checkpointPath_.empty())
            ccp_fatal("--resume needs --checkpoint <base> so there is "
                      "a checkpoint to resume from");
        if (perfCounters_ && traceOutPath_.empty())
            ccp_fatal("--perf-counters samples per-span deltas, so it "
                      "needs --trace-out <path>");

        if (!traceOutPath_.empty()) {
            if (perfCounters_ && !obs::PerfCounters::available())
                ccp_warn("hardware perf counters unavailable "
                         "(perf_event_open denied or unsupported); "
                         "spans record timestamps only");
            obs::Tracer::Options topts;
            topts.path = traceOutPath_;
            topts.perfCounters = perfCounters_;
            obs::Tracer::instance().enable(std::move(topts));
        }

        obs::Json &config = report_.section("config");
        config["machine"] = machineConfigJson(mem::MachineConfig{});
        config["seed"] = obs::Json(envSeed());
        config["scale"] = obs::Json(envScale());
        config["trace_dir"] = obs::Json(traceDir());
        config["threads"] = obs::Json(std::uint64_t(
            threads_ > 0 ? threads_ : ThreadPool::defaultThreads()));
        config["kernel"] = obs::Json(sweep::sweepKernelName(kernel_));
        if (!traceOutPath_.empty()) {
            obs::Json &t = config["tracing"];
            t = obs::Json::object();
            t["trace_out"] = obs::Json(traceOutPath_);
            t["perf_counters"] = obs::Json(perfCounters_);
        }
        if (usesResilience()) {
            obs::Json &r = config["resilience"];
            r = obs::Json::object();
            r["checkpoint"] = obs::Json(checkpointPath_);
            r["resume"] = obs::Json(resume_);
            r["checkpoint_interval_sec"] =
                obs::Json(checkpointIntervalSec_);
            r["mem_budget_bytes"] = obs::Json(memBudgetBytes_);
            r["batch_deadline_sec"] = obs::Json(batchDeadlineSec_);
        }
        if (shards_ > 0) {
            obs::Json &s = config["sharding"];
            s = obs::Json::object();
            s["shards"] = obs::Json(std::uint64_t(shards_));
            s["role"] = obs::Json(shardWorker_ ? "worker"
                                               : "supervisor");
            if (shardWorker_)
                s["shard_id"] = obs::Json(std::uint64_t(shardId_));
            else {
                s["workers"] =
                    obs::Json(std::uint64_t(orchestrateWorkers_));
                s["worker_deadline_sec"] =
                    obs::Json(workerDeadlineSec_);
                s["worker_retries"] =
                    obs::Json(std::uint64_t(workerRetries_));
            }
        }
    }

    obs::RunReport &report() { return report_; }

    /** Sweep worker count from --threads (0 = hardware concurrency,
     *  the value the sweep layer resolves itself). */
    unsigned threads() const { return threads_; }

    /** Sweep evaluation kernel from --kernel (default batched). */
    sweep::SweepKernel kernel() const { return kernel_; }

    /**
     * True when any resilience flag was given, i.e. the sweep should
     * run through sweep::ResilientRunner instead of the plain
     * ParallelSweep path.  The plain path stays the default so runs
     * without these flags are byte-identical to earlier releases.
     */
    bool
    usesResilience() const
    {
        return !checkpointPath_.empty() || resume_ ||
               memBudgetBytes_ > 0 || batchDeadlineSec_ > 0;
    }

    /** True when running as a shard worker (--shard-id). */
    bool shardWorker() const { return shardWorker_; }

    /** Worker mode's shard index. */
    unsigned shardId() const { return shardId_; }

    /** Shard count K (0 when sharding is off). */
    unsigned shards() const { return shards_; }

    /** True when running as the shard supervisor (--orchestrate). */
    bool orchestrating() const { return orchestrateWorkers_ > 0; }

    /**
     * The supervisor's options: the worker command re-invokes *this*
     * binary with every shared sweep flag forwarded, so a worker's
     * ResilientRunner sees exactly the configuration the supervisor
     * was given (same kernel, threads, budget — and therefore the
     * same shard checkpoint keys).
     */
    sweep::OrchestratorOptions
    orchestratorOptions() const
    {
        // The liveness deadline watches the shard checkpoint file, so
        // a healthy worker is only as alive as its flush cadence: cap
        // the forwarded interval well under the deadline, or a worker
        // that checkpoints every 30 s would be shot as "hung" by any
        // tighter --worker-deadline while working fine.
        double interval = checkpointIntervalSec_;
        if (workerDeadlineSec_ > 0)
            interval = std::min(interval, workerDeadlineSec_ / 4.0);
        sweep::OrchestratorOptions opts;
        opts.workerArgv = {selfBinary(), "--checkpoint",
                           checkpointPath_, "--kernel",
                           sweep::sweepKernelName(kernel_),
                           "--checkpoint-interval",
                           std::to_string(interval)};
        if (threads_ > 0) {
            opts.workerArgv.push_back("--threads");
            opts.workerArgv.push_back(std::to_string(threads_));
        }
        if (memBudgetBytes_ > 0) {
            opts.workerArgv.push_back("--mem-budget");
            opts.workerArgv.push_back(
                std::to_string(memBudgetBytes_));
        }
        if (batchDeadlineSec_ > 0) {
            opts.workerArgv.push_back("--batch-deadline");
            opts.workerArgv.push_back(
                std::to_string(batchDeadlineSec_));
        }
        opts.checkpointBase = checkpointPath_;
        opts.shards = shards_;
        opts.workers = orchestrateWorkers_;
        opts.maxAttempts = workerRetries_;
        opts.workerDeadlineSec = workerDeadlineSec_;
        return opts;
    }

    /** The resilience flags assembled into RunnerOptions. */
    sweep::RunnerOptions
    runnerOptions() const
    {
        sweep::RunnerOptions opts;
        opts.threads = threads_;
        opts.kernel = kernel_;
        opts.checkpointPath = checkpointPath_;
        opts.resume = resume_;
        opts.checkpointIntervalSec = checkpointIntervalSec_;
        opts.memBudgetBytes = memBudgetBytes_;
        opts.batchDeadlineSec = batchDeadlineSec_;
        // A supervised worker's checkpoint file doubles as its
        // liveness signal; create it before the first batch.
        opts.initialLivenessFlush = shardWorker_;
        return opts;
    }

    /**
     * Record a resilient run's outcome in the report: resumed scheme
     * counts, the checkpoint files used, whether any phase was
     * interrupted, and the structured failure list (empty array when
     * everything completed — its presence marks a resilient run).
     * Multi-phase benches call this once per evaluate(); the section
     * accumulates across calls.
     */
    void
    addOutcome(const sweep::ResilientOutcome &outcome)
    {
        schemesResumed_ += outcome.schemesResumed;
        anyInterrupted_ = anyInterrupted_ || outcome.interrupted;
        anyIncomplete_ = anyIncomplete_ || !outcome.allCompleted();
        failures_.insert(failures_.end(), outcome.failures.begin(),
                         outcome.failures.end());

        obs::Json &r = report_.section("resilience");
        obs::Json &files = r["checkpoint_files"];
        if (outcomes_++ == 0)
            files = obs::Json::array();
        if (!outcome.checkpointFile.empty())
            files.append(obs::Json(outcome.checkpointFile));
        r["schemes_resumed"] =
            obs::Json(std::uint64_t(schemesResumed_));
        r["interrupted"] = obs::Json(anyInterrupted_);
        r["all_completed"] = obs::Json(!anyIncomplete_);
        r["failures"] = sweep::failuresJson(failures_);
    }

    /** Shorthand for report().section("results"). */
    obs::Json &results() { return report_.section("results"); }

    /**
     * Record the benchmark suite: a per-trace "suite" array plus a
     * "protocol" section of suite-wide counter totals (duplicated
     * from the trace metadata so reports carry protocol behaviour
     * even when every trace came from the on-disk cache).
     */
    void
    addSuite(const std::vector<trace::SharingTrace> &suite)
    {
        obs::Json &arr = report_.section("suite");
        arr = obs::Json::array();
        trace::TraceMeta total;
        std::uint64_t store_misses = 0;
        for (const auto &tr : suite) {
            arr.append(traceMetaJson(tr));
            const trace::TraceMeta &m = tr.meta();
            total.reads += m.reads;
            total.writes += m.writes;
            total.readMisses += m.readMisses;
            total.writeMisses += m.writeMisses;
            total.writeFaults += m.writeFaults;
            total.silentUpgrades += m.silentUpgrades;
            total.invalidationsSent += m.invalidationsSent;
            total.downgrades += m.downgrades;
            total.interventions += m.interventions;
            total.blocksTouched += m.blocksTouched;
            total.totalOps += m.totalOps;
            store_misses += tr.storeMisses();
        }
        obs::Json &proto = report_.section("protocol");
        proto["store_misses"] = obs::Json(store_misses);
        proto["reads"] = obs::Json(total.reads);
        proto["writes"] = obs::Json(total.writes);
        proto["read_misses"] = obs::Json(total.readMisses);
        proto["write_misses"] = obs::Json(total.writeMisses);
        proto["write_faults"] = obs::Json(total.writeFaults);
        proto["silent_upgrades"] = obs::Json(total.silentUpgrades);
        proto["invalidations"] = obs::Json(total.invalidationsSent);
        proto["downgrades"] = obs::Json(total.downgrades);
        proto["interventions"] = obs::Json(total.interventions);
        proto["blocks_touched"] = obs::Json(total.blocksTouched);
        proto["total_ops"] = obs::Json(total.totalOps);
    }

    /**
     * Snapshot the root stats registry and the wall clock into the
     * report and write it if --report was given.  @return the
     * process exit code (0; I/O failure is fatal instead, so CI
     * can't silently lose reports).
     */
    int
    finish()
    {
        // Flush the execution trace before snapshotting stats so the
        // flush's drop accounting (trace.events_dropped) makes the
        // report.
        if (!traceOutPath_.empty()) {
            if (!obs::Tracer::instance().flush())
                ccp_fatal("cannot write execution trace to ",
                          traceOutPath_);
            if (logLevel() >= LogLevel::Info)
                std::fprintf(stderr,
                             "[bench] execution trace written to %s "
                             "(open in Perfetto / chrome://tracing)\n",
                             traceOutPath_.c_str());
        }
        report_.setWallSeconds(wall_.elapsedSec());
        report_.addRegistry(obs::StatsRegistry::root());
        if (!reportPath_.empty()) {
            if (!report_.writeFile(reportPath_))
                ccp_fatal("cannot write report to ", reportPath_);
            if (logLevel() >= LogLevel::Info)
                std::fprintf(stderr, "[bench] report written to %s\n",
                             reportPath_.c_str());
        }
        return 0;
    }

    /**
     * finish(), but exit with @p code — for resilient runs that were
     * interrupted (75) or saw scheme failures.  The report is still
     * written first, so a partial run always leaves its evidence.
     */
    int
    finishWith(int code)
    {
        finish();
        return code;
    }

  private:
    /**
     * The path the supervisor re-invokes for workers.  argv[0] is
     * authoritative when it names a path; a bare name (launched via
     * PATH) falls back to /proc/self/exe so re-invocation does not
     * depend on the caller's PATH surviving into the fleet.
     */
    std::string
    selfBinary() const
    {
        if (argv0_.find('/') != std::string::npos)
            return argv0_;
        std::error_code ec;
        auto exe =
            std::filesystem::read_symlink("/proc/self/exe", ec);
        if (!ec)
            return exe.string();
        if (!argv0_.empty())
            return argv0_;
        ccp_fatal("cannot determine own binary path for worker "
                  "re-invocation");
    }

    static bool
    takesValue(const std::string &arg, const std::string &flag, int &i,
               int argc, char **argv, std::string &value)
    {
        if (arg == flag) {
            if (i + 1 >= argc)
                ccp_fatal(flag, " needs a value");
            value = argv[++i];
            return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            value = arg.substr(flag.size() + 1);
            return true;
        }
        return false;
    }

    obs::Stopwatch wall_;
    obs::RunReport report_;
    std::string reportPath_;
    /** --threads value; 0 = all hardware threads (the default). */
    unsigned threads_ = 0;
    /** --kernel value (sweep inner-loop implementation). */
    sweep::SweepKernel kernel_ = sweep::SweepKernel::Batched;
    /** --checkpoint base path; empty = no checkpointing. */
    std::string checkpointPath_;
    /** --resume: load a matching checkpoint before sweeping. */
    bool resume_ = false;
    /** --checkpoint-interval seconds (0 = after every batch). */
    double checkpointIntervalSec_ = 30.0;
    /** --mem-budget bytes (0 = unlimited). */
    std::uint64_t memBudgetBytes_ = 0;
    /** --batch-deadline seconds (0 = none). */
    double batchDeadlineSec_ = 0.0;
    /** --trace-out path; empty = tracing off. */
    std::string traceOutPath_;
    /** --perf-counters: sample hardware counters per span. */
    bool perfCounters_ = false;
    /** argv[0] as invoked (worker re-invocation). */
    std::string argv0_;
    /** --shards K; 0 = sharding off. */
    unsigned shards_ = 0;
    /** --shard-id (valid when shardWorker_). */
    unsigned shardId_ = 0;
    bool shardWorker_ = false;
    /** --orchestrate W; 0 = not supervising. */
    unsigned orchestrateWorkers_ = 0;
    /** --worker-deadline seconds (0 = none). */
    double workerDeadlineSec_ = 0.0;
    /** --worker-retries attempts per shard. */
    unsigned workerRetries_ = 3;
    /** addOutcome() accumulators (multi-phase benches). */
    std::size_t outcomes_ = 0;
    std::size_t schemesResumed_ = 0;
    bool anyInterrupted_ = false;
    bool anyIncomplete_ = false;
    std::vector<sweep::SchemeFailure> failures_;
};

/**
 * Evaluate @p schemes over @p suite the way the bench's flags ask:
 * the plain ParallelSweep path by default (byte-identical to earlier
 * releases), or sweep::ResilientRunner when any resilience flag was
 * given.  The runner's outcome (resume counts, failures, interrupt
 * state) is recorded in the report; @p outcome_out receives it so the
 * caller can rank around failed schemes and honour exit code 75.
 *
 * Returns the per-scheme SuiteResults in scheme order.  On the plain
 * path @p outcome_out is a fully-completed synthetic outcome, so
 * callers can treat both paths uniformly.
 */
inline std::vector<predict::SuiteResult>
evaluateSchemesResilient(BenchContext &ctx,
                         const std::vector<trace::SharingTrace> &suite,
                         const std::vector<predict::SchemeSpec>
                             &schemes,
                         predict::UpdateMode mode,
                         const obs::ProgressFn &progress,
                         sweep::ResilientOutcome &outcome_out)
{
    if (suite.empty())
        ccp_fatal("cannot sweep an empty trace suite");
    if (schemes.empty())
        ccp_fatal("cannot sweep an empty scheme list");
    if (ctx.usesResilience()) {
        sweep::ResilientRunner runner(ctx.runnerOptions());
        outcome_out = runner.evaluate(suite, schemes, mode, progress);
        ctx.addOutcome(outcome_out);
        return std::move(outcome_out.results);
    }
    sweep::ParallelSweep sweeper(ctx.threads(), ctx.kernel());
    auto results = sweeper.evaluate(suite, schemes, mode, progress);
    outcome_out = sweep::ResilientOutcome{};
    outcome_out.completed.assign(schemes.size(), 1);
    return results;
}

/**
 * Shard-worker mode (--shard-id i --shards K): evaluate only shard
 * i's schemes through the ResilientRunner, leaving the shard CCPC
 * checkpoint as the product.  Prints no table — the checkpoint IS the
 * output; the supervisor (or mergeShardCheckpoints) folds it into the
 * global result.  Exit codes follow the runner convention: 0 when the
 * shard's evaluation finished (even with per-scheme failures — the
 * supervisor verifies coverage from the checkpoint, not the exit
 * code), 75 when drained by a signal.
 *
 * Worker-side fault points (fired when the armed value equals this
 * worker's shard index, so one orchestration kills exactly one
 * worker):
 *   shard.worker_fail=i   exit 1 before evaluating (persistent — the
 *                         supervisor never strips it; quarantine)
 *   shard.worker_kill=i   SIGKILL self after the first fresh scheme
 *                         completes (a partial checkpoint exists)
 *   shard.worker_hang=i   wedge after the first fresh scheme (the
 *                         supervisor's liveness deadline must fire)
 *   shard.torn_checkpoint=i  truncate the final shard checkpoint to
 *                         half its size after a clean run (the
 *                         supervisor must reject and retry it)
 */
inline int
runShardWorker(BenchContext &ctx,
               const std::vector<trace::SharingTrace> &suite,
               const std::vector<predict::SchemeSpec> &schemes,
               predict::UpdateMode mode)
{
    const unsigned shard = ctx.shardId();
    const sweep::ShardPlan plan =
        sweep::planShards(schemes, ctx.shards());
    const auto mine = sweep::shardSchemes(schemes, plan, shard);

    obs::Json &results = ctx.results();
    results["shard"] = obs::Json(std::uint64_t(shard));
    results["shards"] = obs::Json(std::uint64_t(ctx.shards()));
    results["schemes_owned"] = obs::Json(mine.size());
    if (mine.empty())
        return ctx.finish(); // K > N leaves some shards empty

    if (fault::enabled() &&
        fault::fireAt("shard.worker_fail", shard)) {
        std::fprintf(stderr,
                     "[bench] shard %u: injected persistent worker "
                     "failure\n", shard);
        return ctx.finishWith(1);
    }

    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr,
                     "[bench] shard %u/%u: sweeping %zu of %zu "
                     "schemes...\n", shard, ctx.shards(), mine.size(),
                     schemes.size());
    obs::ProgressReporter reporter("shard " + std::to_string(shard));
    sweep::ResilientRunner runner(ctx.runnerOptions());
    sweep::ResilientOutcome outcome = runner.evaluate(
        suite, mine, mode, [&](const obs::Progress &p) {
            reporter(p);
            // Crash/hang faults fire only after fresh progress, so
            // the checkpoint the supervisor resumes from is never
            // empty (ticks happen after checkpoint writes when
            // --checkpoint-interval is 0).
            if (fault::enabled() && p.done > p.resumed) {
                if (fault::fireAt("shard.worker_kill", shard))
                    ::kill(::getpid(), SIGKILL);
                if (fault::fireAt("shard.worker_hang", shard))
                    for (;;)
                        ::sleep(3600);
            }
        });
    ctx.addOutcome(outcome);

    if (!outcome.interrupted && fault::enabled()) {
        if (fault::fireAt("shard.torn_checkpoint", shard)) {
            std::error_code ec;
            const auto size = std::filesystem::file_size(
                outcome.checkpointFile, ec);
            if (!ec)
                std::filesystem::resize_file(outcome.checkpointFile,
                                             size / 2, ec);
            std::fprintf(stderr,
                         "[bench] shard %u: tore checkpoint %s to "
                         "half size\n", shard,
                         outcome.checkpointFile.c_str());
        }
    }

    if (outcome.interrupted)
        return ctx.finishWith(outcome.exitCode());
    return ctx.finish();
}

/**
 * Supervisor mode (--orchestrate W --shards K): run the sweep as a
 * fleet of shard-worker processes (sweep/orchestrator.hh) and return
 * the merged results in the exact shape evaluateSchemesResilient
 * returns, so the caller's ranking and printing code is shared —
 * and its stdout byte-identical — between the two paths.
 */
inline std::vector<predict::SuiteResult>
orchestrateSchemes(BenchContext &ctx,
                   const std::vector<trace::SharingTrace> &suite,
                   const std::vector<predict::SchemeSpec> &schemes,
                   predict::UpdateMode mode,
                   const obs::ProgressFn &progress,
                   sweep::ResilientOutcome &outcome_out)
{
    sweep::OrchestratorOutcome oo = sweep::orchestrateSweep(
        ctx.orchestratorOptions(), suite, schemes, mode, ctx.kernel(),
        progress);
    ctx.addOutcome(oo.outcome);
    obs::Json &orch = ctx.report().section("orchestrator");
    orch["shards"] = obs::Json(std::uint64_t(ctx.shards()));
    orch["shard_reports"] = sweep::orchestratorJson(oo.shardReports);
    outcome_out = std::move(oo.outcome);
    return std::move(outcome_out.results);
}

/**
 * evaluateSchemesResilient for benches whose tables index results
 * positionally and therefore need every scheme to complete (Table 7,
 * the ablations).  An interrupted sweep exits 75 ("rerun with
 * --resume"); a scheme failure exits 1 — both after writing the
 * report, so the failure evidence is never lost.  Top-N style benches
 * that can rank around holes should use evaluateSchemesResilient and
 * the completed mask instead.
 */
inline std::vector<predict::SuiteResult>
evaluateAllOrExit(BenchContext &ctx,
                  const std::vector<trace::SharingTrace> &suite,
                  const std::vector<predict::SchemeSpec> &schemes,
                  predict::UpdateMode mode)
{
    sweep::ResilientOutcome outcome;
    auto results =
        evaluateSchemesResilient(ctx, suite, schemes, mode, {},
                                 outcome);
    if (outcome.interrupted) {
        std::fprintf(stderr,
                     "[bench] sweep interrupted — rerun with "
                     "--resume to continue from %s\n",
                     outcome.checkpointFile.c_str());
        std::exit(ctx.finishWith(outcome.exitCode()));
    }
    if (!outcome.allCompleted()) {
        std::fprintf(stderr,
                     "[bench] %zu scheme(s) failed and this table "
                     "needs every row (see the report's resilience "
                     "section)\n", outcome.failures.size());
        std::exit(ctx.finishWith(1));
    }
    return results;
}

/** The paper's Table 5 rows (per benchmark). */
struct PaperTable5
{
    const char *name;
    std::uint64_t maxStaticStores;
    std::uint64_t maxPredictedStores;
    std::uint64_t blocksTouched;
    std::uint64_t storeMisses;
};

inline const std::vector<PaperTable5> &
paperTable5()
{
    static const std::vector<PaperTable5> rows = {
        {"barnes", 164, 61, 22241, 161911},
        {"em3d", 35, 23, 51889, 262451},
        {"gauss", 21, 13, 32946, 129528},
        {"mp3d", 160, 71, 30182, 212828},
        {"ocean", 380, 230, 239861, 2871656},
        {"unstruct", 69, 67, 2832, 633607},
        {"water", 69, 27, 2896, 172925},
    };
    return rows;
}

/** The paper's Table 6 rows. */
struct PaperTable6
{
    const char *name;
    std::uint64_t sharingEvents;
    std::uint64_t sharingDecisions;
    double prevalencePct;
};

inline const std::vector<PaperTable6> &
paperTable6()
{
    static const std::vector<PaperTable6> rows = {
        {"barnes", 391085, 2590576, 15.10},
        {"em3d", 133926, 4199216, 3.19},
        {"gauss", 205666, 2072448, 9.92},
        {"mp3d", 306990, 3405248, 9.02},
        {"ocean", 983085, 45946496, 2.14},
        {"unstruct", 1300764, 10137712, 12.83},
        {"water", 335482, 2766800, 12.13},
    };
    return rows;
}

/** The paper's Table 7 rows (prior schemes). */
struct PaperTable7
{
    const char *description;
    const char *scheme;
    const char *update;
    int sizeLog2;
    double sensitivity;
    double pvp;
};

inline const std::vector<PaperTable7> &
paperTable7()
{
    static const std::vector<PaperTable7> rows = {
        {"baseline-last", "last()1", "direct", 0, 0.57, 0.66},
        {"Kaxiras-instr.-last", "last(pid+pc8)1", "direct", 16, 0.57,
         0.66},
        {"Kaxiras-instr.-inter.", "inter(pid+pc8)2", "direct", 17, 0.45,
         0.80},
        {"Lai-address+pid-last", "last(pid+mem8)1", "direct", 16, 0.57,
         0.66},
        {"Kaxiras-instr.-last", "last(pid+pc8)1", "forwarded", 16, 0.51,
         0.61},
        {"Kaxiras-instr.-inter.", "inter(pid+pc8)2", "forwarded", 17,
         0.43, 0.80},
        {"Lai-address+pid-last", "last(pid+mem8)1", "forwarded", 16,
         0.55, 0.66},
    };
    return rows;
}

/** One row of the paper's top-10 Tables 8-11. */
struct PaperTopTen
{
    const char *scheme;
    int sizeLog2;
    double pvp;
    double sens;
};

inline const std::vector<PaperTopTen> &
paperTable8()
{
    static const std::vector<PaperTopTen> rows = {
        {"inter(pid+add6)4", 16, 0.93, 0.32},
        {"inter(pid+pc2+add6)4", 18, 0.92, 0.34},
        {"inter(pid+add8)4", 18, 0.92, 0.32},
        {"inter(pid+pc4+add6)4", 20, 0.91, 0.36},
        {"inter(pid+add10)4", 20, 0.91, 0.33},
        {"inter(pid+pc2+add8)4", 20, 0.91, 0.33},
        {"inter(pid+add4)4", 14, 0.90, 0.32},
        {"inter(pid+pc6+add6)4", 22, 0.90, 0.37},
        {"inter(pid+add8)3", 18, 0.90, 0.36},
        {"inter(pid+pc4+add4)4", 18, 0.90, 0.36},
    };
    return rows;
}

inline const std::vector<PaperTopTen> &
paperTable9()
{
    static const std::vector<PaperTopTen> rows = {
        {"inter(pid+pc8+add6)4", 24, 0.94, 0.36},
        {"inter(pid+pc6+add6)4", 22, 0.94, 0.36},
        {"inter(pid+pc6+dir+add4)4", 24, 0.94, 0.34},
        {"inter(pid+pc10+add4)4", 24, 0.93, 0.37},
        {"inter(pid+pc4+dir+add4)4", 22, 0.93, 0.34},
        {"inter(pid+pc4+add6)4", 20, 0.93, 0.35},
        {"inter(pid+pc6+add8)4", 24, 0.93, 0.35},
        {"inter(pid+pc8+add4)4", 22, 0.93, 0.36},
        {"inter(pid+pc4+dir+add6)4", 24, 0.93, 0.33},
        {"inter(pid+pc6+add4)4", 20, 0.93, 0.36},
    };
    return rows;
}

inline const std::vector<PaperTopTen> &
paperTable10()
{
    static const std::vector<PaperTopTen> rows = {
        {"union(dir+add14)4", 24, 0.47, 0.68},
        {"union(add16)4", 22, 0.45, 0.67},
        {"union(dir+add12)4", 22, 0.45, 0.67},
        {"union(dir+add10)4", 20, 0.42, 0.67},
        {"union(dir+add2)4", 12, 0.39, 0.67},
        {"union(dir+add8)4", 18, 0.41, 0.67},
        {"union(pc2+dir+add6)4", 18, 0.39, 0.67},
        {"union(add14)4", 20, 0.42, 0.67},
        {"union(pc4+dir)4", 14, 0.40, 0.66},
        {"union(pc2+dir+add2)4", 14, 0.40, 0.66},
    };
    return rows;
}

inline const std::vector<PaperTopTen> &
paperTable11()
{
    static const std::vector<PaperTopTen> rows = {
        {"union(dir+add14)4", 24, 0.47, 0.68},
        {"union(pid+dir+add4)4", 18, 0.46, 0.68},
        {"union(pid+dir+add2)4", 16, 0.46, 0.68},
        {"union(add16)4", 22, 0.45, 0.67},
        {"union(dir+add12)4", 22, 0.45, 0.67},
        {"union(dir+add10)4", 20, 0.42, 0.67},
        {"union(dir+add2)4", 12, 0.39, 0.67},
        {"union(pid+dir+add6)4", 20, 0.47, 0.67},
        {"union(dir+add8)4", 18, 0.41, 0.67},
        {"union(pid+add6)4", 16, 0.43, 0.67},
    };
    return rows;
}

} // namespace ccp::benchutil

#endif // CCP_BENCH_BENCH_UTIL_HH
