/**
 * @file
 * Ablation A2 (DESIGN.md): index-field knockout.  Starting from a
 * hybrid scheme that uses all four fields, drop one field at a time
 * and measure the damage — quantifying the paper's summary that "pid
 * and history depth are paramount, addr has some value, and dir and
 * pc have the least value".
 */

#include "bench_util.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("ablate_fields", argc, argv);

    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    for (auto kind : {predict::FunctionKind::Inter,
                      predict::FunctionKind::Union}) {
        predict::SchemeSpec full;
        full.kind = kind;
        full.depth = 4;
        full.index = {true, 4, true, 4}; // pid+pc4+dir+add4

        struct Variant
        {
            const char *label;
            predict::IndexSpec index;
        };
        std::vector<Variant> variants = {
            {"-pid", {false, 4, true, 4}},
            {"-pc", {true, 0, true, 4}},
            {"-dir", {true, 4, false, 4}},
            {"-addr", {true, 4, true, 0}},
        };

        // One sharded batch per kind: full, the four field knockouts,
        // and the depth knockout ("depth is paramount") together.
        std::vector<predict::SchemeSpec> specs = {full};
        for (const auto &v : variants) {
            predict::SchemeSpec s = full;
            s.index = v.index;
            specs.push_back(s);
        }
        predict::SchemeSpec shallow = full;
        shallow.depth = 1;
        specs.push_back(shallow);

        auto results = evaluateAllOrExit(
            ctx, suite, specs, predict::UpdateMode::Forwarded);
        const auto &base = results.front();

        std::printf("Knockout from %s [forwarded]:\n",
                    sweep::formatScheme(full).c_str());
        Table t({"variant", "sens", "d_sens", "pvp", "d_pvp"});
        t.addRow({"(full)", fmt(base.avgSensitivity(), 3), "-",
                  fmt(base.avgPvp(), 3), "-"});
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const auto &res = results[1 + v];
            t.addRow({variants[v].label, fmt(res.avgSensitivity(), 3),
                      fmt(res.avgSensitivity() - base.avgSensitivity(),
                          3),
                      fmt(res.avgPvp(), 3),
                      fmt(res.avgPvp() - base.avgPvp(), 3)});
        }
        const auto &res = results.back();
        t.addRow({"depth4->1", fmt(res.avgSensitivity(), 3),
                  fmt(res.avgSensitivity() - base.avgSensitivity(), 3),
                  fmt(res.avgPvp(), 3),
                  fmt(res.avgPvp() - base.avgPvp(), 3)});
        t.print();
        std::printf("\n");
    }

    std::printf("Expected: dropping pid (or collapsing depth) hurts "
                "most; dropping dir or pc barely matters.\n");
    return ctx.finish();
}
