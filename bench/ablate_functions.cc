/**
 * @file
 * Ablation A4: the prediction functions beyond the paper's simulated
 * set — overlap-last (named in section 3.5 but unsimulated) and
 * sticky-spatial (footnote 2) — against the classic last / union /
 * inter points, suite-wide.
 *
 * Expected: overlap-last sits between last and inter (its overlap
 * check is a one-bit confidence filter); sticky-spatial beats plain
 * last sensitivity on region-structured benchmarks (gauss, ocean) by
 * borrowing neighbours' history, at a PVP cost.
 */

#include <cmath>

#include "bench_util.hh"
#include "predict/evaluator.hh"
#include "predict/spatial.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using namespace ccp::benchutil;

    BenchContext ctx("ablate_functions", argc, argv);

    auto suite = loadOrGenerateSuite();
    ctx.addSuite(suite);

    std::printf("Ablation: extension prediction functions "
                "(direct update, suite averages)\n\n");
    Table t({"scheme", "size", "sens", "pvp"});

    const char *schemes[] = {
        "last(dir+add14)1",
        "overlap-last(dir+add14)1",
        "inter(dir+add14)2",
        "union(dir+add14)4",
        "overlap-last(pid+pc8)1",
        "inter(pid+pc8)2",
    };
    std::vector<predict::SchemeSpec> specs;
    for (const char *text : schemes) {
        auto parsed = sweep::parseScheme(text);
        if (!parsed)
            return 1;
        specs.push_back(parsed->scheme);
    }
    auto results = evaluateAllOrExit(ctx, suite, specs,
                                     predict::UpdateMode::Direct);
    for (std::size_t s = 0; s < specs.size(); ++s) {
        t.addRow({schemes[s],
                  fmt(std::log2(double(specs[s].sizeBits(16))), 0),
                  fmt(results[s].avgSensitivity(), 3),
                  fmt(results[s].avgPvp(), 3)});
    }

    // Sticky-spatial variants (separate machinery: multi-entry reads).
    struct SpatialCase
    {
        const char *label;
        predict::StickySpatialParams params;
    };
    SpatialCase cases[] = {
        {"sticky-spatial(add14,reach1)", {14, 1, true}},
        {"sticky-spatial(add14,reach2)", {14, 2, true}},
        {"spatial(add14,reach1,nonsticky)", {14, 1, false}},
        {"sticky(add14,reach0)", {14, 0, true}},
    };
    for (const auto &c : cases) {
        double sens = 0, pvp = 0;
        for (const auto &tr : suite) {
            predict::StickySpatialPredictor pred(c.params,
                                                 tr.nNodes());
            auto conf = predict::evaluateStickySpatial(tr, pred);
            sens += conf.sensitivity();
            pvp += conf.pvp();
        }
        predict::StickySpatialPredictor sizer(c.params, 16);
        t.addRow({c.label,
                  fmt(std::log2(double(sizer.sizeBits())), 0),
                  fmt(sens / suite.size(), 3),
                  fmt(pvp / suite.size(), 3)});
    }
    t.print();

    std::printf("\nExpected: overlap-last between last and inter; "
                "spatial reach trades PVP for sensitivity.\n");
    return ctx.finish();
}
