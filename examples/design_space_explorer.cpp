/**
 * @file
 * design_space_explorer: interactive-grade sweep over the predictor
 * taxonomy for a chosen benchmark.
 *
 * Enumerates the affordable design space (paper section 5.4) under a
 * configurable cost cap, evaluates every scheme on one benchmark's
 * trace, and prints the Pareto frontier of (sensitivity, PVP) plus
 * the top schemes by each metric — the workflow the paper's Tables
 * 8-11 automate for the whole suite.
 *
 * Usage: design_space_explorer [benchmark] [log2_max_bits] [scale]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"
#include "sweep/space.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;

    std::string benchmark = argc > 1 ? argv[1] : "water";
    unsigned log2_bits = argc > 2 ? std::atoi(argv[2]) : 18;
    double scale = argc > 3 ? std::atof(argv[3]) : 0.5;

    workloads::WorkloadParams params;
    params.scale = scale;
    std::printf("generating '%s' trace...\n", benchmark.c_str());
    std::vector<trace::SharingTrace> suite;
    suite.push_back(workloads::generateTrace(benchmark, params));
    std::printf("  %llu events, prevalence %.2f%%\n\n",
                (unsigned long long)suite[0].storeMisses(),
                100.0 * suite[0].prevalence());

    sweep::SpaceSpec space;
    space.maxBits = 1ull << log2_bits;
    // A coarser grid than the paper's full sweep keeps this example
    // interactive; bench/table8..11 run the full space.
    space.pcBitsGrid = {0, 4, 8, 12};
    space.addrBitsGrid = {0, 4, 8, 12};
    space.pasDepths = {2};
    auto schemes = sweep::enumerateSchemes(space);
    std::printf("evaluating %zu schemes under 2^%u bits...\n",
                schemes.size(), log2_bits);

    auto results = sweep::evaluateSchemes(suite, schemes,
                                          predict::UpdateMode::Direct);

    // Pareto frontier on (sensitivity, pvp).
    struct Point
    {
        double sens, pvp;
        const predict::SuiteResult *res;
    };
    std::vector<Point> pts;
    for (const auto &r : results)
        pts.push_back({r.avgSensitivity(), r.avgPvp(), &r});
    std::sort(pts.begin(), pts.end(), [](const Point &a, const Point &b) {
        return a.sens != b.sens ? a.sens > b.sens : a.pvp > b.pvp;
    });
    std::printf("\nPareto frontier (sensitivity vs PVP):\n");
    std::printf("%-28s %6s %12s %8s\n", "scheme", "size", "sensitivity",
                "pvp");
    double best_pvp = -1.0;
    for (const auto &p : pts) {
        if (p.pvp <= best_pvp)
            continue;
        best_pvp = p.pvp;
        std::printf("%-28s 2^%-4.0f %12.3f %8.3f\n",
                    sweep::formatScheme(p.res->scheme).c_str(),
                    p.res->scheme.makeTable(16).log2SizeBits(), p.sens,
                    p.pvp);
    }

    for (auto by : {sweep::RankBy::Pvp, sweep::RankBy::Sensitivity}) {
        auto top = sweep::rankSchemes(suite, schemes,
                                      predict::UpdateMode::Direct, by, 5);
        std::printf("\ntop 5 by %s:\n",
                    by == sweep::RankBy::Pvp ? "PVP" : "sensitivity");
        for (const auto &r : top)
            std::printf("  %-28s sens %.3f  pvp %.3f\n",
                        sweep::formatScheme(r.result.scheme).c_str(),
                        r.result.avgSensitivity(), r.result.avgPvp());
    }
    return 0;
}
