/**
 * @file
 * trace_tool: generate, save, load and inspect coherence traces.
 *
 * The paper's methodology generates traces once and sweeps predictors
 * over them many times; this tool is that workflow's command line.
 *
 * Usage:
 *   trace_tool gen     <benchmark> <file> [scale] [seed]
 *   trace_tool info    <file>
 *   trace_tool dump    <file> [count]   # print the first N events
 *   trace_tool eval    <file> <scheme> [direct|forwarded|ordered]
 *   trace_tool analyze <file>           # sharing-pattern breakdown
 *   trace_tool verify  <file>           # validate format + checksum
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/patterns.hh"
#include "obs/timer.hh"
#include "trace/format.hh"
#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  trace_tool gen     <benchmark> <file> [scale] [seed]\n"
        "  trace_tool info    <file>\n"
        "  trace_tool dump    <file> [count]\n"
        "  trace_tool eval    <file> <scheme> "
        "[direct|forwarded|ordered]\n"
        "  trace_tool analyze <file>\n"
        "  trace_tool verify  <file>\n");
    return 2;
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    workloads::WorkloadParams params;
    params.scale = argc > 4 ? std::atof(argv[4]) : 1.0;
    params.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 0) : 0x5eed;
    auto tr = workloads::generateTrace(argv[2], params);
    if (!tr.saveFile(argv[3])) {
        std::fprintf(stderr, "cannot write %s\n", argv[3]);
        return 1;
    }
    std::printf("wrote %s: %llu events\n", argv[3],
                (unsigned long long)tr.storeMisses());
    return 0;
}

int
loadTrace(const char *path, trace::SharingTrace &tr)
{
    if (!tr.loadFile(path)) {
        std::fprintf(stderr, "cannot load trace %s\n", path);
        return 1;
    }
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::SharingTrace tr;
    if (loadTrace(argv[2], tr))
        return 1;
    std::printf("name:                  %s\n", tr.name().c_str());
    std::printf("nodes:                 %u\n", tr.nNodes());
    std::printf("memory ops:            %llu\n",
                (unsigned long long)tr.meta().totalOps);
    std::printf("coherence store misses:%llu\n",
                (unsigned long long)tr.storeMisses());
    std::printf("blocks touched:        %llu\n",
                (unsigned long long)tr.meta().blocksTouched);
    std::printf("max static stores:     %llu\n",
                (unsigned long long)tr.meta().maxStaticStoresPerNode);
    std::printf("max predicted stores:  %llu\n",
                (unsigned long long)tr.meta().maxPredictedStoresPerNode);
    std::printf("sharing decisions:     %llu\n",
                (unsigned long long)tr.decisions());
    std::printf("sharing events:        %llu\n",
                (unsigned long long)tr.sharingEvents());
    std::printf("prevalence:            %.2f%%\n",
                100.0 * tr.prevalence());
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::SharingTrace tr;
    if (loadTrace(argv[2], tr))
        return 1;
    std::size_t count = argc > 3 ? std::strtoull(argv[3], nullptr, 0)
                                 : 20;
    count = std::min(count, tr.events().size());
    std::printf("%-8s %-4s %-10s %-4s %-10s %-18s %-18s\n", "seq",
                "pid", "pc", "dir", "block", "invalidated", "readers");
    for (std::size_t i = 0; i < count; ++i) {
        const auto &ev = tr.events()[i];
        std::printf("%-8zu %-4u 0x%-8llx %-4u 0x%-8llx %-18s %-18s\n",
                    i, ev.pid, (unsigned long long)ev.pc, ev.dir,
                    (unsigned long long)ev.block,
                    ev.invalidated.toString(tr.nNodes()).c_str(),
                    ev.readers.toString(tr.nNodes()).c_str());
    }
    return 0;
}

int
cmdEval(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    trace::SharingTrace tr;
    if (loadTrace(argv[2], tr))
        return 1;
    auto parsed = sweep::parseScheme(argv[3]);
    if (!parsed) {
        std::fprintf(stderr, "bad scheme '%s'\n", argv[3]);
        return 1;
    }
    predict::UpdateMode mode = predict::UpdateMode::Direct;
    if (parsed->mode)
        mode = *parsed->mode;
    if (argc > 4) {
        if (!std::strcmp(argv[4], "forwarded"))
            mode = predict::UpdateMode::Forwarded;
        else if (!std::strcmp(argv[4], "ordered"))
            mode = predict::UpdateMode::Ordered;
        else if (std::strcmp(argv[4], "direct"))
            return usage();
    }

    auto conf = predict::evaluateTrace(tr, parsed->scheme, mode);
    std::printf("scheme:      %s[%s]\n",
                sweep::formatScheme(parsed->scheme).c_str(),
                predict::updateModeName(mode));
    std::printf("size:        2^%.1f bits\n",
                parsed->scheme.makeTable(tr.nNodes()).log2SizeBits());
    std::printf("tp/fp/tn/fn: %llu/%llu/%llu/%llu\n",
                (unsigned long long)conf.tp, (unsigned long long)conf.fp,
                (unsigned long long)conf.tn,
                (unsigned long long)conf.fn);
    std::printf("prevalence:  %.4f\n", conf.prevalence());
    std::printf("sensitivity: %.4f\n", conf.sensitivity());
    std::printf("pvp:         %.4f\n", conf.pvp());
    std::printf("specificity: %.4f\n", conf.specificity());
    std::printf("pvn:         %.4f\n", conf.pvn());
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::SharingTrace tr;
    if (loadTrace(argv[2], tr))
        return 1;
    auto a = analysis::analyzeTrace(tr);

    std::printf("%-20s %10s %8s %10s %8s\n", "pattern", "blocks", "%",
                "events", "%");
    for (std::size_t p = 0; p < analysis::numPatterns; ++p) {
        auto pat = static_cast<analysis::SharingPattern>(p);
        std::printf("%-20s %10llu %7.1f%% %10llu %7.1f%%\n",
                    analysis::sharingPatternName(pat),
                    (unsigned long long)a.blocks[p],
                    100.0 * a.blockFraction(pat),
                    (unsigned long long)a.events[p],
                    100.0 * a.eventFraction(pat));
    }
    std::printf("\nreaders/event: mean %.2f, max %.0f\n",
                a.readersPerEvent.mean(), a.readersPerEvent.max());
    std::printf("invalidation degree histogram: %s\n",
                a.invalidationDegree.toString().c_str());
    return 0;
}

/**
 * Staged verification with distinct exit codes, so scripts (CI
 * checks, batch validators) can act on the failure class without
 * parsing stderr — see docs/TRACE_FORMAT.md "Verification":
 *
 *   0  valid v4 trace, checksum ok, both read paths agree
 *   1  internal inconsistency (read paths disagree or refuse a file
 *      the staged checks accepted — a library bug, not a bad file)
 *   2  usage error
 *   3  file missing or unreadable
 *   4  bad header (magic/version/bounds) or file size mismatch
 *   5  checksum mismatch (container shape fine, contents corrupt)
 */
int
cmdVerify(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const char *path = argv[2];

    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "%s: cannot open\n", path);
        return 3;
    }

    trace::TraceHeader header;
    if (!is.read(reinterpret_cast<char *>(&header), sizeof(header))) {
        std::fprintf(stderr,
                     "%s: shorter than a v4 header (%zu bytes)\n",
                     path, sizeof(header));
        return 4;
    }
    if (!trace::validateHeader(header)) {
        std::fprintf(stderr,
                     "%s: bad header (magic/version/bounds or "
                     "inconsistent payload size)\n", path);
        return 4;
    }
    std::error_code ec;
    const std::uint64_t file_size =
        std::filesystem::file_size(path, ec);
    if (ec || file_size != sizeof(header) + header.payloadBytes) {
        std::fprintf(stderr,
                     "%s: file is %llu bytes, header promises %llu\n",
                     path, (unsigned long long)file_size,
                     (unsigned long long)(sizeof(header) +
                                          header.payloadBytes));
        return 4;
    }

    // Streamed whole-file checksum: header (checksum field zeroed)
    // then every payload byte, without materializing the trace.
    trace::Fnv1a sum = trace::checksumSeed(header);
    char buf[1 << 16];
    std::uint64_t remaining = header.payloadBytes;
    while (remaining > 0) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, sizeof(buf)));
        if (!is.read(buf, static_cast<std::streamsize>(chunk))) {
            std::fprintf(stderr, "%s: payload read failed\n", path);
            return 4;
        }
        sum.update(buf, chunk);
        remaining -= chunk;
    }
    if (sum.digest() != header.checksum) {
        std::fprintf(stderr,
                     "%s: checksum mismatch (stored %016llx, "
                     "computed %016llx)\n", path,
                     (unsigned long long)header.checksum,
                     (unsigned long long)sum.digest());
        return 5;
    }

    // Cross-check the two production read paths against each other;
    // a failure here is a library bug, not a damaged file.
    trace::SharingTrace via_stream;
    obs::Stopwatch stream_watch;
    const bool stream_ok = via_stream.loadFileStream(path);
    const double stream_sec = stream_watch.elapsedSec();

    trace::SharingTrace via_map;
    obs::Stopwatch map_watch;
    const bool map_ok = via_map.loadFileMapped(path);
    const double map_sec = map_watch.elapsedSec();

    std::printf("stream read: %s (%.3f ms)\n",
                stream_ok ? "ok" : "INVALID", 1e3 * stream_sec);
    std::printf("mmap read:   %s (%.3f ms)\n",
                map_ok ? "ok" : "INVALID", 1e3 * map_sec);
    if (!stream_ok || !map_ok ||
        via_stream.events().size() != via_map.events().size() ||
        via_stream.nNodes() != via_map.nNodes()) {
        std::fprintf(stderr,
                     "%s: read paths disagree on a file that passed "
                     "verification\n", path);
        return 1;
    }
    std::printf("trace '%s': %u nodes, %llu events — checksum ok\n",
                via_map.name().c_str(), via_map.nNodes(),
                (unsigned long long)via_map.storeMisses());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    if (!std::strcmp(argv[1], "info"))
        return cmdInfo(argc, argv);
    if (!std::strcmp(argv[1], "dump"))
        return cmdDump(argc, argv);
    if (!std::strcmp(argv[1], "eval"))
        return cmdEval(argc, argv);
    if (!std::strcmp(argv[1], "analyze"))
        return cmdAnalyze(argc, argv);
    if (!std::strcmp(argv[1], "verify"))
        return cmdVerify(argc, argv);
    return usage();
}
