/**
 * @file
 * forwarding_study: quantifies the bandwidth-latency trade-off the
 * paper's conclusion sketches, using the data-forwarding overlay
 * (the repository's extension of the study, see src/forward).
 *
 * For a spectrum of schemes from sure-bet (deep intersection) to
 * aggressive (deep union), replays a benchmark trace with forwarding
 * enabled and reports cycles saved versus forwarding traffic injected
 * on the 2-D torus.
 *
 * Usage: forwarding_study [benchmark] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "forward/forwarding.hh"
#include "forward/selector.hh"
#include "sweep/name.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;

    std::string benchmark = argc > 1 ? argv[1] : "em3d";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    workloads::WorkloadParams params;
    params.scale = scale;
    std::printf("generating '%s' trace...\n", benchmark.c_str());
    auto tr = workloads::generateTrace(benchmark, params);
    std::printf("  %llu coherence store misses, prevalence %.2f%%\n\n",
                (unsigned long long)tr.storeMisses(),
                100.0 * tr.prevalence());

    // Sure bets first, then increasingly aggressive forwarding.
    const char *schemes[] = {
        "inter(pid+add6)4",    // high PVP: only stable relationships
        "inter(pid+pc8)2",     // Kaxiras & Goodman
        "last(pid+add8)1",     // Lai & Falsafi style
        "union(pid+dir+add4)2",
        "union(dir+add14)4",   // high sensitivity: forward eagerly
    };

    std::printf("%-24s %9s %9s %10s %12s %10s\n", "scheme", "sens",
                "pvp", "saved(Mc)", "traffic(MBh)", "MBh/Mcycle");
    for (const char *text : schemes) {
        auto parsed = sweep::parseScheme(text);
        if (!parsed) {
            std::fprintf(stderr, "bad scheme %s\n", text);
            return 1;
        }
        auto res = forward::simulateForwarding(
            tr, parsed->scheme, predict::UpdateMode::Direct);
        std::printf("%-24s %9.3f %9.3f %10.2f %12.2f %10.2f\n", text,
                    res.sensitivity(), res.pvp(),
                    res.cyclesSaved / 1e6, res.forwardByteHops / 1e6,
                    res.cyclesSaved
                        ? res.forwardByteHops /
                              static_cast<double>(res.cyclesSaved)
                        : 0.0);
    }

    std::printf(
        "\nThe frontier quantifies the paper's conclusion: with spare\n"
        "network bandwidth, aggressive high-sensitivity union schemes\n"
        "convert traffic into latency savings; on a loaded network the\n"
        "high-PVP intersection schemes make only sure bets.\n");

    // Automatic selection under shrinking bandwidth budgets.
    std::vector<trace::SharingTrace> suite;
    suite.push_back(std::move(tr));
    std::vector<predict::SchemeSpec> candidates;
    for (const char *text : schemes)
        candidates.push_back(sweep::parseScheme(text)->scheme);

    std::printf("\nselectScheme() under shrinking traffic budgets "
                "(byte-hops per event):\n");
    for (double budget : {1e300, 200.0, 60.0, 15.0, 3.0}) {
        forward::SelectionConstraints constraints;
        constraints.maxByteHopsPerEvent = budget;
        auto sel = forward::selectScheme(suite, candidates, constraints);
        if (budget >= 1e300)
            std::printf("  budget unlimited -> ");
        else
            std::printf("  budget %7.1f   -> ", budget);
        if (sel.best) {
            const auto &win = sel.candidates[*sel.best];
            std::printf("%-24s (%.2f Mcycles saved, %.1f Bh/event)\n",
                        sweep::formatScheme(win.scheme).c_str(),
                        win.pooled.cyclesSaved / 1e6,
                        win.byteHopsPerEvent);
        } else {
            std::printf("no scheme fits: forward nothing\n");
        }
    }
    return 0;
}
