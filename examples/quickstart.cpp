/**
 * @file
 * Quickstart: the one-page tour of the library.
 *
 * Generates a coherence trace for one SPLASH-class benchmark on the
 * simulated 16-node machine, then evaluates three classic sharing
 * predictors on it and prints the screening-test metrics the paper
 * uses (prevalence, sensitivity, PVP).
 *
 * Usage: quickstart [benchmark] [scale]
 *   benchmark  one of: barnes em3d gauss mp3d ocean unstruct water
 *              (default mp3d)
 *   scale      iteration scale factor (default 0.5 for a quick run)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;

    std::string benchmark = argc > 1 ? argv[1] : "mp3d";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    // 1. Run the benchmark on the simulated machine (16 nodes, 64-byte
    //    lines, 16KB L1 / 512KB L2, directory MSI, 2-D torus) and
    //    collect its coherence trace.
    workloads::WorkloadParams params;
    params.scale = scale;
    std::printf("generating '%s' trace (scale %.2f)...\n",
                benchmark.c_str(), scale);
    trace::SharingTrace tr = workloads::generateTrace(benchmark, params);

    std::printf("  %llu memory ops, %llu coherence store misses, "
                "%llu blocks\n",
                (unsigned long long)tr.meta().totalOps,
                (unsigned long long)tr.storeMisses(),
                (unsigned long long)tr.meta().blocksTouched);
    std::printf("  prevalence of sharing: %.2f%%\n\n",
                100.0 * tr.prevalence());

    // 2. Evaluate three schemes from the paper, by name.
    const char *schemes[] = {
        "last()1",           // zero-cost baseline
        "inter(pid+pc8)2",   // Kaxiras & Goodman, instruction-based
        "union(dir+add14)4", // a deep-history sensitivity champion
    };

    std::printf("%-22s %8s %12s %8s\n", "scheme", "size", "sensitivity",
                "pvp");
    for (const char *text : schemes) {
        auto parsed = sweep::parseScheme(text);
        if (!parsed) {
            std::fprintf(stderr, "bad scheme: %s\n", text);
            return 1;
        }
        auto conf = predict::evaluateTrace(
            tr, parsed->scheme, predict::UpdateMode::Direct);
        std::printf("%-22s 2^%-5.0f %12.3f %8.3f\n", text,
                    parsed->scheme.index.indexBits(4) == 0
                        ? 0.0
                        : parsed->scheme.makeTable(16).log2SizeBits(),
                    conf.sensitivity(), conf.pvp());
    }

    std::printf("\nsensitivity = fraction of true sharing captured;\n"
                "pvp = fraction of forwarding traffic that is useful.\n");
    return 0;
}
