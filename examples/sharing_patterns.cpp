/**
 * @file
 * sharing_patterns: Weber & Gupta-style analysis of the benchmark
 * traces — the invalidation-degree histogram and the sharing-pattern
 * mix (unshared / producer-consumer / migratory / wide / irregular)
 * per benchmark.  Explains *why* each benchmark's predictors behave
 * as they do: producer-consumer events are what sharing prediction
 * captures; migratory events are effectively random (paper section
 * 1); wide events dilute PVP but feed sensitivity.
 *
 * Usage: sharing_patterns [scale] [benchmark...]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/patterns.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccp;
    using analysis::SharingPattern;

    double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = workloads::workloadNames();

    std::printf("%-10s %8s %7s | %6s %6s %6s %6s %6s | %s\n",
                "benchmark", "events", "deg", "unsh%", "pc%", "migr%",
                "wide%", "irr%", "degree histogram (0..8+ readers)");

    for (const auto &name : names) {
        workloads::WorkloadParams params;
        params.scale = scale;
        auto tr = workloads::generateTrace(name, params);
        auto a = analysis::analyzeTrace(tr);

        auto pct = [&](SharingPattern p) {
            return 100.0 * a.eventFraction(p);
        };
        std::string hist;
        std::uint64_t tail = 0;
        for (unsigned d = 0; d <= 16; ++d) {
            if (d < 8) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%llu ",
                              (unsigned long long)
                                  a.invalidationDegree.bucket(d));
                hist += buf;
            } else {
                tail += a.invalidationDegree.bucket(d);
            }
        }
        hist += "+" + std::to_string(tail);

        std::printf(
            "%-10s %8llu %7.2f | %6.1f %6.1f %6.1f %6.1f %6.1f | %s\n",
            tr.name().c_str(), (unsigned long long)tr.storeMisses(),
            a.readersPerEvent.mean(),
            pct(SharingPattern::Unshared),
            pct(SharingPattern::ProducerConsumer),
            pct(SharingPattern::Migratory),
            pct(SharingPattern::WideShared),
            pct(SharingPattern::Irregular), hist.c_str());
    }

    std::printf("\ndeg = mean readers per coherence store miss "
                "(16 x prevalence).\n");
    return 0;
}
