file(REMOVE_RECURSE
  "CMakeFiles/ablate_functions.dir/ablate_functions.cc.o"
  "CMakeFiles/ablate_functions.dir/ablate_functions.cc.o.d"
  "ablate_functions"
  "ablate_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
