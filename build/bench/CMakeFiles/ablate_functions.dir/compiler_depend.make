# Empty compiler generated dependencies file for ablate_functions.
# This may be replaced when dependencies are built.
