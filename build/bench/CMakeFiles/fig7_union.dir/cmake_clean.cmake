file(REMOVE_RECURSE
  "CMakeFiles/fig7_union.dir/fig7_union.cc.o"
  "CMakeFiles/fig7_union.dir/fig7_union.cc.o.d"
  "fig7_union"
  "fig7_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
