# Empty compiler generated dependencies file for fig7_union.
# This may be replaced when dependencies are built.
