file(REMOVE_RECURSE
  "CMakeFiles/ablate_online.dir/ablate_online.cc.o"
  "CMakeFiles/ablate_online.dir/ablate_online.cc.o.d"
  "ablate_online"
  "ablate_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
