# Empty dependencies file for ablate_online.
# This may be replaced when dependencies are built.
