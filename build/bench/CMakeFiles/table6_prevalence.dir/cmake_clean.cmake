file(REMOVE_RECURSE
  "CMakeFiles/table6_prevalence.dir/table6_prevalence.cc.o"
  "CMakeFiles/table6_prevalence.dir/table6_prevalence.cc.o.d"
  "table6_prevalence"
  "table6_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
