# Empty compiler generated dependencies file for table6_prevalence.
# This may be replaced when dependencies are built.
