# Empty compiler generated dependencies file for table10_top_sens_direct.
# This may be replaced when dependencies are built.
