file(REMOVE_RECURSE
  "CMakeFiles/table10_top_sens_direct.dir/table10_top_sens_direct.cc.o"
  "CMakeFiles/table10_top_sens_direct.dir/table10_top_sens_direct.cc.o.d"
  "table10_top_sens_direct"
  "table10_top_sens_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_top_sens_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
