# Empty compiler generated dependencies file for fig9_depth.
# This may be replaced when dependencies are built.
