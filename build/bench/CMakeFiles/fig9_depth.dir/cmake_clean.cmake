file(REMOVE_RECURSE
  "CMakeFiles/fig9_depth.dir/fig9_depth.cc.o"
  "CMakeFiles/fig9_depth.dir/fig9_depth.cc.o.d"
  "fig9_depth"
  "fig9_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
