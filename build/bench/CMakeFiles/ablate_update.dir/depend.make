# Empty dependencies file for ablate_update.
# This may be replaced when dependencies are built.
