file(REMOVE_RECURSE
  "CMakeFiles/ablate_update.dir/ablate_update.cc.o"
  "CMakeFiles/ablate_update.dir/ablate_update.cc.o.d"
  "ablate_update"
  "ablate_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
