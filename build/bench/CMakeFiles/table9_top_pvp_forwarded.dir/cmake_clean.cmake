file(REMOVE_RECURSE
  "CMakeFiles/table9_top_pvp_forwarded.dir/table9_top_pvp_forwarded.cc.o"
  "CMakeFiles/table9_top_pvp_forwarded.dir/table9_top_pvp_forwarded.cc.o.d"
  "table9_top_pvp_forwarded"
  "table9_top_pvp_forwarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_top_pvp_forwarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
