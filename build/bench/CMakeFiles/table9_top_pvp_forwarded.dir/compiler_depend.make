# Empty compiler generated dependencies file for table9_top_pvp_forwarded.
# This may be replaced when dependencies are built.
