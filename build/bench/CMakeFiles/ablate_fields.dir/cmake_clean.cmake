file(REMOVE_RECURSE
  "CMakeFiles/ablate_fields.dir/ablate_fields.cc.o"
  "CMakeFiles/ablate_fields.dir/ablate_fields.cc.o.d"
  "ablate_fields"
  "ablate_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
