# Empty compiler generated dependencies file for ablate_fields.
# This may be replaced when dependencies are built.
