file(REMOVE_RECURSE
  "CMakeFiles/ablate_forwarding.dir/ablate_forwarding.cc.o"
  "CMakeFiles/ablate_forwarding.dir/ablate_forwarding.cc.o.d"
  "ablate_forwarding"
  "ablate_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
