# Empty dependencies file for ablate_forwarding.
# This may be replaced when dependencies are built.
