# Empty dependencies file for fig6_intersection.
# This may be replaced when dependencies are built.
