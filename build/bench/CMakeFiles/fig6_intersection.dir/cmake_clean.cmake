file(REMOVE_RECURSE
  "CMakeFiles/fig6_intersection.dir/fig6_intersection.cc.o"
  "CMakeFiles/fig6_intersection.dir/fig6_intersection.cc.o.d"
  "fig6_intersection"
  "fig6_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
