# Empty compiler generated dependencies file for table11_top_sens_forwarded.
# This may be replaced when dependencies are built.
