file(REMOVE_RECURSE
  "CMakeFiles/table11_top_sens_forwarded.dir/table11_top_sens_forwarded.cc.o"
  "CMakeFiles/table11_top_sens_forwarded.dir/table11_top_sens_forwarded.cc.o.d"
  "table11_top_sens_forwarded"
  "table11_top_sens_forwarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_top_sens_forwarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
