# Empty dependencies file for table8_top_pvp_direct.
# This may be replaced when dependencies are built.
