file(REMOVE_RECURSE
  "CMakeFiles/table8_top_pvp_direct.dir/table8_top_pvp_direct.cc.o"
  "CMakeFiles/table8_top_pvp_direct.dir/table8_top_pvp_direct.cc.o.d"
  "table8_top_pvp_direct"
  "table8_top_pvp_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_top_pvp_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
