file(REMOVE_RECURSE
  "CMakeFiles/table7_prior_schemes.dir/table7_prior_schemes.cc.o"
  "CMakeFiles/table7_prior_schemes.dir/table7_prior_schemes.cc.o.d"
  "table7_prior_schemes"
  "table7_prior_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_prior_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
