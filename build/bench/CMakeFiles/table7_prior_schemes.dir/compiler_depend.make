# Empty compiler generated dependencies file for table7_prior_schemes.
# This may be replaced when dependencies are built.
