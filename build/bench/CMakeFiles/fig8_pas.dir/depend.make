# Empty dependencies file for fig8_pas.
# This may be replaced when dependencies are built.
