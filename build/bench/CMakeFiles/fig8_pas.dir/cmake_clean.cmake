file(REMOVE_RECURSE
  "CMakeFiles/fig8_pas.dir/fig8_pas.cc.o"
  "CMakeFiles/fig8_pas.dir/fig8_pas.cc.o.d"
  "fig8_pas"
  "fig8_pas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
