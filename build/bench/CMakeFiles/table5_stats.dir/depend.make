# Empty dependencies file for table5_stats.
# This may be replaced when dependencies are built.
