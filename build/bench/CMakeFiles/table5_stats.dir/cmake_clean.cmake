file(REMOVE_RECURSE
  "CMakeFiles/table5_stats.dir/table5_stats.cc.o"
  "CMakeFiles/table5_stats.dir/table5_stats.cc.o.d"
  "table5_stats"
  "table5_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
