# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bitmap_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/torus_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/directory_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/function_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/name_test[1]_include.cmake")
include("/root/repo/build/tests/space_test[1]_include.cmake")
include("/root/repo/build/tests/scheme_property_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/workload_structure_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
