# Empty compiler generated dependencies file for torus_test.
# This may be replaced when dependencies are built.
