
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/function_test.cc" "tests/CMakeFiles/function_test.dir/function_test.cc.o" "gcc" "tests/CMakeFiles/function_test.dir/function_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ccp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ccp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ccp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ccp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/ccp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/ccp_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/forward/CMakeFiles/ccp_forward.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
