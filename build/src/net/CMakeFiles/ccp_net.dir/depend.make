# Empty dependencies file for ccp_net.
# This may be replaced when dependencies are built.
