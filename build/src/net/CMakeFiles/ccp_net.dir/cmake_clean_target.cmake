file(REMOVE_RECURSE
  "libccp_net.a"
)
