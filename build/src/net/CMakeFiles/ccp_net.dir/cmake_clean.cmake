file(REMOVE_RECURSE
  "CMakeFiles/ccp_net.dir/torus.cc.o"
  "CMakeFiles/ccp_net.dir/torus.cc.o.d"
  "libccp_net.a"
  "libccp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
