file(REMOVE_RECURSE
  "libccp_common.a"
)
