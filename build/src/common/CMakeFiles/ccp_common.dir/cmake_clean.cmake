file(REMOVE_RECURSE
  "CMakeFiles/ccp_common.dir/bitmap.cc.o"
  "CMakeFiles/ccp_common.dir/bitmap.cc.o.d"
  "CMakeFiles/ccp_common.dir/logging.cc.o"
  "CMakeFiles/ccp_common.dir/logging.cc.o.d"
  "CMakeFiles/ccp_common.dir/rng.cc.o"
  "CMakeFiles/ccp_common.dir/rng.cc.o.d"
  "CMakeFiles/ccp_common.dir/stats.cc.o"
  "CMakeFiles/ccp_common.dir/stats.cc.o.d"
  "libccp_common.a"
  "libccp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
