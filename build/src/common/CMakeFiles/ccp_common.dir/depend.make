# Empty dependencies file for ccp_common.
# This may be replaced when dependencies are built.
