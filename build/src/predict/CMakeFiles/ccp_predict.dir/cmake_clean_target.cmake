file(REMOVE_RECURSE
  "libccp_predict.a"
)
