
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/distributed.cc" "src/predict/CMakeFiles/ccp_predict.dir/distributed.cc.o" "gcc" "src/predict/CMakeFiles/ccp_predict.dir/distributed.cc.o.d"
  "/root/repo/src/predict/evaluator.cc" "src/predict/CMakeFiles/ccp_predict.dir/evaluator.cc.o" "gcc" "src/predict/CMakeFiles/ccp_predict.dir/evaluator.cc.o.d"
  "/root/repo/src/predict/function.cc" "src/predict/CMakeFiles/ccp_predict.dir/function.cc.o" "gcc" "src/predict/CMakeFiles/ccp_predict.dir/function.cc.o.d"
  "/root/repo/src/predict/index.cc" "src/predict/CMakeFiles/ccp_predict.dir/index.cc.o" "gcc" "src/predict/CMakeFiles/ccp_predict.dir/index.cc.o.d"
  "/root/repo/src/predict/metrics.cc" "src/predict/CMakeFiles/ccp_predict.dir/metrics.cc.o" "gcc" "src/predict/CMakeFiles/ccp_predict.dir/metrics.cc.o.d"
  "/root/repo/src/predict/spatial.cc" "src/predict/CMakeFiles/ccp_predict.dir/spatial.cc.o" "gcc" "src/predict/CMakeFiles/ccp_predict.dir/spatial.cc.o.d"
  "/root/repo/src/predict/table.cc" "src/predict/CMakeFiles/ccp_predict.dir/table.cc.o" "gcc" "src/predict/CMakeFiles/ccp_predict.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ccp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
