# Empty compiler generated dependencies file for ccp_predict.
# This may be replaced when dependencies are built.
