file(REMOVE_RECURSE
  "CMakeFiles/ccp_predict.dir/distributed.cc.o"
  "CMakeFiles/ccp_predict.dir/distributed.cc.o.d"
  "CMakeFiles/ccp_predict.dir/evaluator.cc.o"
  "CMakeFiles/ccp_predict.dir/evaluator.cc.o.d"
  "CMakeFiles/ccp_predict.dir/function.cc.o"
  "CMakeFiles/ccp_predict.dir/function.cc.o.d"
  "CMakeFiles/ccp_predict.dir/index.cc.o"
  "CMakeFiles/ccp_predict.dir/index.cc.o.d"
  "CMakeFiles/ccp_predict.dir/metrics.cc.o"
  "CMakeFiles/ccp_predict.dir/metrics.cc.o.d"
  "CMakeFiles/ccp_predict.dir/spatial.cc.o"
  "CMakeFiles/ccp_predict.dir/spatial.cc.o.d"
  "CMakeFiles/ccp_predict.dir/table.cc.o"
  "CMakeFiles/ccp_predict.dir/table.cc.o.d"
  "libccp_predict.a"
  "libccp_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
