# Empty dependencies file for ccp_sim.
# This may be replaced when dependencies are built.
