file(REMOVE_RECURSE
  "CMakeFiles/ccp_sim.dir/machine.cc.o"
  "CMakeFiles/ccp_sim.dir/machine.cc.o.d"
  "libccp_sim.a"
  "libccp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
