file(REMOVE_RECURSE
  "libccp_sim.a"
)
