# Empty dependencies file for ccp_workloads.
# This may be replaced when dependencies are built.
