file(REMOVE_RECURSE
  "CMakeFiles/ccp_workloads.dir/barnes.cc.o"
  "CMakeFiles/ccp_workloads.dir/barnes.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/em3d.cc.o"
  "CMakeFiles/ccp_workloads.dir/em3d.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/gauss.cc.o"
  "CMakeFiles/ccp_workloads.dir/gauss.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/mp3d.cc.o"
  "CMakeFiles/ccp_workloads.dir/mp3d.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/ocean.cc.o"
  "CMakeFiles/ccp_workloads.dir/ocean.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/registry.cc.o"
  "CMakeFiles/ccp_workloads.dir/registry.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/unstruct.cc.o"
  "CMakeFiles/ccp_workloads.dir/unstruct.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/water.cc.o"
  "CMakeFiles/ccp_workloads.dir/water.cc.o.d"
  "CMakeFiles/ccp_workloads.dir/workload.cc.o"
  "CMakeFiles/ccp_workloads.dir/workload.cc.o.d"
  "libccp_workloads.a"
  "libccp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
