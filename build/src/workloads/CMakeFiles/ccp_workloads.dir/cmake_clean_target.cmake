file(REMOVE_RECURSE
  "libccp_workloads.a"
)
