
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/barnes.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/barnes.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/barnes.cc.o.d"
  "/root/repo/src/workloads/em3d.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/em3d.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/em3d.cc.o.d"
  "/root/repo/src/workloads/gauss.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/gauss.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/gauss.cc.o.d"
  "/root/repo/src/workloads/mp3d.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/mp3d.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/mp3d.cc.o.d"
  "/root/repo/src/workloads/ocean.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/ocean.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/ocean.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/unstruct.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/unstruct.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/unstruct.cc.o.d"
  "/root/repo/src/workloads/water.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/water.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/water.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/ccp_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/ccp_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ccp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
