
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/patterns.cc" "src/analysis/CMakeFiles/ccp_analysis.dir/patterns.cc.o" "gcc" "src/analysis/CMakeFiles/ccp_analysis.dir/patterns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ccp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
