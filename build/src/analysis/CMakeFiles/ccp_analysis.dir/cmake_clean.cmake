file(REMOVE_RECURSE
  "CMakeFiles/ccp_analysis.dir/patterns.cc.o"
  "CMakeFiles/ccp_analysis.dir/patterns.cc.o.d"
  "libccp_analysis.a"
  "libccp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
