# Empty dependencies file for ccp_analysis.
# This may be replaced when dependencies are built.
