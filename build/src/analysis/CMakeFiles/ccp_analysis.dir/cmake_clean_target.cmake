file(REMOVE_RECURSE
  "libccp_analysis.a"
)
