
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sweep/figures.cc" "src/sweep/CMakeFiles/ccp_sweep.dir/figures.cc.o" "gcc" "src/sweep/CMakeFiles/ccp_sweep.dir/figures.cc.o.d"
  "/root/repo/src/sweep/name.cc" "src/sweep/CMakeFiles/ccp_sweep.dir/name.cc.o" "gcc" "src/sweep/CMakeFiles/ccp_sweep.dir/name.cc.o.d"
  "/root/repo/src/sweep/search.cc" "src/sweep/CMakeFiles/ccp_sweep.dir/search.cc.o" "gcc" "src/sweep/CMakeFiles/ccp_sweep.dir/search.cc.o.d"
  "/root/repo/src/sweep/space.cc" "src/sweep/CMakeFiles/ccp_sweep.dir/space.cc.o" "gcc" "src/sweep/CMakeFiles/ccp_sweep.dir/space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predict/CMakeFiles/ccp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
