file(REMOVE_RECURSE
  "CMakeFiles/ccp_sweep.dir/figures.cc.o"
  "CMakeFiles/ccp_sweep.dir/figures.cc.o.d"
  "CMakeFiles/ccp_sweep.dir/name.cc.o"
  "CMakeFiles/ccp_sweep.dir/name.cc.o.d"
  "CMakeFiles/ccp_sweep.dir/search.cc.o"
  "CMakeFiles/ccp_sweep.dir/search.cc.o.d"
  "CMakeFiles/ccp_sweep.dir/space.cc.o"
  "CMakeFiles/ccp_sweep.dir/space.cc.o.d"
  "libccp_sweep.a"
  "libccp_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
