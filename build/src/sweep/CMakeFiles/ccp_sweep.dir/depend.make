# Empty dependencies file for ccp_sweep.
# This may be replaced when dependencies are built.
