file(REMOVE_RECURSE
  "libccp_sweep.a"
)
