file(REMOVE_RECURSE
  "CMakeFiles/ccp_trace.dir/trace.cc.o"
  "CMakeFiles/ccp_trace.dir/trace.cc.o.d"
  "libccp_trace.a"
  "libccp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
