# Empty compiler generated dependencies file for ccp_trace.
# This may be replaced when dependencies are built.
