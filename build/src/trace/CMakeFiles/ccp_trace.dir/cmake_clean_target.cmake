file(REMOVE_RECURSE
  "libccp_trace.a"
)
