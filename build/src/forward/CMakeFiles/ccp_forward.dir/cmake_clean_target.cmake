file(REMOVE_RECURSE
  "libccp_forward.a"
)
