# Empty compiler generated dependencies file for ccp_forward.
# This may be replaced when dependencies are built.
