file(REMOVE_RECURSE
  "CMakeFiles/ccp_forward.dir/forwarding.cc.o"
  "CMakeFiles/ccp_forward.dir/forwarding.cc.o.d"
  "CMakeFiles/ccp_forward.dir/online.cc.o"
  "CMakeFiles/ccp_forward.dir/online.cc.o.d"
  "CMakeFiles/ccp_forward.dir/selector.cc.o"
  "CMakeFiles/ccp_forward.dir/selector.cc.o.d"
  "libccp_forward.a"
  "libccp_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
