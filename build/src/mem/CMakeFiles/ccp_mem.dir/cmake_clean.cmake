file(REMOVE_RECURSE
  "CMakeFiles/ccp_mem.dir/cache.cc.o"
  "CMakeFiles/ccp_mem.dir/cache.cc.o.d"
  "CMakeFiles/ccp_mem.dir/directory.cc.o"
  "CMakeFiles/ccp_mem.dir/directory.cc.o.d"
  "CMakeFiles/ccp_mem.dir/protocol.cc.o"
  "CMakeFiles/ccp_mem.dir/protocol.cc.o.d"
  "libccp_mem.a"
  "libccp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
