file(REMOVE_RECURSE
  "libccp_mem.a"
)
