# Empty compiler generated dependencies file for ccp_mem.
# This may be replaced when dependencies are built.
