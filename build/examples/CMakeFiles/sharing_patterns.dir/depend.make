# Empty dependencies file for sharing_patterns.
# This may be replaced when dependencies are built.
