file(REMOVE_RECURSE
  "CMakeFiles/sharing_patterns.dir/sharing_patterns.cpp.o"
  "CMakeFiles/sharing_patterns.dir/sharing_patterns.cpp.o.d"
  "sharing_patterns"
  "sharing_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
