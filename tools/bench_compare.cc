/**
 * @file
 * Perf-regression gate over the benchmark records the repo's perf
 * binaries write: the sweep-kernel record from perf_micro
 * (BENCH_sweep.json) and the serve-pipeline record from serve_bench
 * (BENCH_serve.json, meta.kind == "serve").  Compares a current
 * record against a committed baseline and fails when throughput
 * regressed beyond tolerance.
 *
 *   bench_compare --baseline bench/baselines/BENCH_sweep.json \
 *                 --current BENCH_sweep.json \
 *                 [--max-regress 0.10] [--absolute] [--archive <dir>]
 *
 * The record kind is read from meta.kind (absent = "sweep", the
 * original record layout); baseline and current must agree.  Sweep
 * records gate the kernel speedups below; serve records gate
 * pipeline_ratio (served vs inline events/s on the same machine —
 * relative, so host-portable) and record the absolute events/s and
 * ingest-to-predict p50/p99 latency, which must stay present but only
 * gate under --absolute (events/s; latency is recorded only, since
 * queueing delay is load- not regression-shaped).
 *
 * Two comparison modes:
 *
 *  - Relative (default): gates metrics that are ratios of two runs on
 *    the SAME machine — the batched/reference speedup, the
 *    simd/batched speedup, and the tracing overhead — so a baseline
 *    committed from one host is a valid gate on any other (CI runners
 *    differ in absolute throughput by design, and gating absolute
 *    numbers across hosts would only flake).
 *  - --absolute: additionally gates the absolute scheme-events/s of
 *    every section (reference, batched, batched_parallel, simd).
 *    Use it when baseline and current come from the same machine,
 *    e.g. the nightly archive.
 *
 * Gate policy per metric:
 *
 *  - Present in both records: current must not fall below baseline by
 *    more than the tolerance.
 *  - Missing in the baseline (an older record predating the metric):
 *    record the current value, don't gate — the row prints "new" and
 *    passes, and re-committing the baseline starts gating it.
 *  - Present in the baseline but missing in the current record: FAIL;
 *    a metric must never silently disappear.
 *  - Zero (or otherwise degenerate) denominators are explicit
 *    failures with a message, never inf/nan rows that "pass".
 *  - simd_speedup is only gated when the current record's
 *    simd.backend is "avx2"; the scalar fallback is recorded but
 *    carries no vector-speedup promise.
 *
 * --archive <dir> copies the current record into @p dir under a name
 * stamped from its own metadata (date + git SHA), building the history
 * the absolute mode can be pointed at.
 *
 * Exit codes: 0 pass, 1 regression (or malformed records), 2 usage.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace {

using ccp::obs::Json;

struct Options
{
    std::string baselinePath;
    std::string currentPath;
    double maxRegress = 0.10;
    bool absolute = false;
    std::string archiveDir;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --baseline <BENCH_sweep.json> "
        "--current <BENCH_sweep.json>\n"
        "          [--max-regress <frac>] [--absolute] "
        "[--archive <dir>]\n",
        argv0);
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return is.good() || is.eof();
}

/** Numeric field at doc[section][key] (or doc[key] with empty
 *  section); nan when absent. */
double
field(const Json &doc, const std::string &section,
      const std::string &key)
{
    const Json *j = &doc;
    if (!section.empty()) {
        j = j->find(section);
        if (!j || !j->isObject())
            return std::nan("");
    }
    const Json *v = j->find(key);
    if (!v || !v->isNumber())
        return std::nan("");
    return v->asDouble();
}

/** One compared metric (all are higher-is-better). */
struct Check
{
    std::string label;
    double baseline;
    double current;
    /** False: record the row for the report, never fail on it. */
    bool gate = true;
    /** Why a row is ungated or malformed; printed after the status. */
    std::string note;
    /** True: the source record is malformed; fail with the note. */
    bool malformed = false;
};

bool
runChecks(const std::vector<Check> &checks, double max_regress)
{
    bool ok = true;
    std::printf("%-34s %12s %12s %8s\n", "metric", "baseline",
                "current", "delta");
    for (const auto &c : checks) {
        const char *label = c.label.c_str();
        if (c.malformed) {
            std::printf("%-34s %12s %12s %8s  %s\n", label, "-", "-",
                        "FAIL", c.note.c_str());
            ok = false;
            continue;
        }
        if (!std::isnan(c.baseline) && !std::isfinite(c.baseline)) {
            // A present-but-infinite value (e.g. an overflowed
            // "1e999" in the record) is a broken measurement, not a
            // comparison: inf >= anything would "pass" every gate.
            // (A literal nan never gets this far — the JSON parser
            // rejects the token, so the whole record fails to load.)
            std::printf("%-34s %12s %12s %8s  %s\n", label, "-", "-",
                        "FAIL", "non-finite baseline value");
            ok = false;
            continue;
        }
        if (!std::isnan(c.current) && !std::isfinite(c.current)) {
            std::printf("%-34s %12s %12s %8s  %s\n", label, "-", "-",
                        "FAIL", "non-finite current value");
            ok = false;
            continue;
        }
        if (std::isnan(c.current)) {
            // A metric may be new to the current record, but must
            // never silently disappear from it.
            std::printf("%-34s %12s %12s %8s  %s\n", label,
                        std::isnan(c.baseline) ? "missing" : "-",
                        "missing", "FAIL",
                        std::isnan(c.baseline)
                            ? "absent from both records"
                            : "present in baseline, missing in "
                              "current record");
            ok = false;
            continue;
        }
        if (std::isnan(c.baseline)) {
            // Record, don't gate: the baseline predates this metric.
            std::printf("%-34s %12s %12.3f %8s  %s\n", label,
                        "missing", c.current, "new",
                        "recorded, not gated (no baseline)");
            continue;
        }
        if (c.gate && c.baseline == 0.0) {
            std::printf("%-34s %12.3f %12.3f %8s  %s\n", label,
                        c.baseline, c.current, "FAIL",
                        "zero baseline: relative regression is "
                        "undefined");
            ok = false;
            continue;
        }
        const bool pass =
            !c.gate || c.current >= c.baseline * (1.0 - max_regress);
        if (c.baseline != 0.0) {
            const double delta = c.current / c.baseline - 1.0;
            std::printf("%-34s %12.3f %12.3f %+7.1f%% %s%s\n", label,
                        c.baseline, c.current, delta * 100.0,
                        pass ? "" : "FAIL", c.note.c_str());
        } else {
            std::printf("%-34s %12.3f %12.3f %8s %s%s\n", label,
                        c.baseline, c.current, "n/a",
                        pass ? "" : "FAIL", c.note.c_str());
        }
        ok = ok && pass;
    }
    return ok;
}

/** String field at doc[section][key]; fallback when absent. */
std::string
sectionString(const Json &doc, const char *section, const char *key,
              const char *fallback)
{
    if (const Json *sec = doc.find(section))
        if (const Json *v = sec->find(key))
            if (v->kind() == Json::Kind::String)
                return v->asString();
    return fallback;
}

std::string
metaString(const Json &doc, const char *key, const char *fallback)
{
    if (const Json *meta = doc.find("meta"))
        if (const Json *v = meta->find(key))
            if (v->kind() == Json::Kind::String)
                return v->asString();
    return fallback;
}

/** Archive the current record as BENCH_<kind>_<date>_<sha12>.json. */
bool
archive(const Json &doc, const std::string &raw,
        const std::string &dir)
{
    std::string date = metaString(doc, "date_utc", "undated");
    for (char &c : date)
        if (c == ':')
            c = '-';
    std::string sha = metaString(doc, "git_sha", "unknown");
    if (sha.size() > 12)
        sha.resize(12);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/BENCH_" +
                             metaString(doc, "kind", "sweep") + "_" +
                             date + "_" + sha + ".json";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << raw;
    if (!os.good()) {
        std::fprintf(stderr, "bench_compare: cannot archive to %s\n",
                     path.c_str());
        return false;
    }
    std::printf("archived %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](std::string &dst) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            dst = argv[++i];
        };
        if (arg == "--baseline") {
            value(opt.baselinePath);
        } else if (arg == "--current") {
            value(opt.currentPath);
        } else if (arg == "--max-regress") {
            std::string v;
            value(v);
            char *end = nullptr;
            opt.maxRegress = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                opt.maxRegress < 0 || opt.maxRegress >= 1) {
                std::fprintf(stderr,
                             "bad --max-regress '%s' (want a "
                             "fraction in [0,1))\n", v.c_str());
                return 2;
            }
        } else if (arg == "--absolute") {
            opt.absolute = true;
        } else if (arg == "--archive") {
            value(opt.archiveDir);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    if (opt.baselinePath.empty() || opt.currentPath.empty())
        return usage(argv[0]);

    std::string base_raw, cur_raw;
    if (!readFile(opt.baselinePath, base_raw)) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n",
                     opt.baselinePath.c_str());
        return 1;
    }
    if (!readFile(opt.currentPath, cur_raw)) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n",
                     opt.currentPath.c_str());
        return 1;
    }
    auto base = Json::parse(base_raw);
    auto cur = Json::parse(cur_raw);
    if (!base || !cur) {
        std::fprintf(stderr,
                     "bench_compare: malformed JSON in %s\n",
                     !base ? opt.baselinePath.c_str()
                           : opt.currentPath.c_str());
        return 1;
    }

    std::printf("baseline: %s (%s, %s)\n", opt.baselinePath.c_str(),
                metaString(*base, "git_sha", "unstamped").c_str(),
                metaString(*base, "date_utc", "undated").c_str());
    std::printf("current:  %s (%s, %s)\n", opt.currentPath.c_str(),
                metaString(*cur, "git_sha", "unstamped").c_str(),
                metaString(*cur, "date_utc", "undated").c_str());

    // The record layout is selected by meta.kind; records predating
    // the field are sweep records.  Comparing across kinds is a
    // configuration error, not a regression.
    const std::string base_kind = metaString(*base, "kind", "sweep");
    const std::string cur_kind = metaString(*cur, "kind", "sweep");
    if (base_kind != cur_kind) {
        std::fprintf(stderr,
                     "bench_compare: record kind mismatch (baseline "
                     "'%s' vs current '%s')\n",
                     base_kind.c_str(), cur_kind.c_str());
        return 1;
    }

    std::vector<Check> checks;
    auto pushCheck = [&checks](std::string label, double baseline,
                               double current) -> Check & {
        Check c;
        c.label = std::move(label);
        c.baseline = baseline;
        c.current = current;
        checks.push_back(std::move(c));
        return checks.back();
    };
    if (cur_kind == "serve") {
        // The host-portable gate: how much of the inline (no-pipeline)
        // throughput the served path keeps on the same machine.
        pushCheck("pipeline_ratio (served/inline)",
                  field(*base, "", "pipeline_ratio"),
                  field(*cur, "", "pipeline_ratio"));
        // Absolute numbers must stay present in every record (a
        // missing-in-current row fails) but only gate when baseline
        // and current share a machine.
        {
            Check &c =
                pushCheck("serve events/s (M)",
                          field(*base, "serve", "events_per_sec") / 1e6,
                          field(*cur, "serve", "events_per_sec") / 1e6);
            if (!opt.absolute) {
                c.gate = false;
                c.note = "  not gated (host-dependent; --absolute)";
            }
        }
        {
            Check &c = pushCheck(
                "inline events/s (M)",
                field(*base, "inline", "events_per_sec") / 1e6,
                field(*cur, "inline", "events_per_sec") / 1e6);
            if (!opt.absolute) {
                c.gate = false;
                c.note = "  not gated (host-dependent; --absolute)";
            }
        }
        // Ingest-to-predict latency is dominated by queueing under
        // the bench's open-loop load, so it is recorded (and must not
        // disappear) but never gated.
        for (const char *key : {"p50_ns", "p99_ns"}) {
            Check &c = pushCheck(std::string("serve latency ") + key,
                                 field(*base, "serve", key),
                                 field(*cur, "serve", key));
            c.gate = false;
            c.note = "  not gated (lower is better; recorded)";
        }

        bool serve_ok = runChecks(checks, opt.maxRegress);
        if (!opt.archiveDir.empty() &&
            !archive(*cur, cur_raw, opt.archiveDir))
            serve_ok = false;
        std::printf("bench_compare: %s (tolerance %.0f%%)\n",
                    serve_ok ? "PASS" : "FAIL",
                    opt.maxRegress * 100.0);
        return serve_ok ? 0 : 1;
    }

    pushCheck("speedup (batched/reference)",
              field(*base, "", "speedup"),
              field(*cur, "", "speedup"));
    // Tracing overhead is lower-is-better; gate it as the inverted
    // throughput ratio so one tolerance covers every row.  An
    // overhead at or below -100% would flip the ratio's sign (a
    // physically impossible record): fail it explicitly instead of
    // letting inf/nan sail through the comparison.
    const double base_ov =
        field(*base, "tracing", "enabled_overhead_pct");
    const double cur_ov =
        field(*cur, "tracing", "enabled_overhead_pct");
    {
        Check &c = pushCheck("tracing throughput ratio",
                             std::nan(""), std::nan(""));
        if (!std::isnan(base_ov)) {
            if (100.0 + base_ov <= 0.0) {
                c.malformed = true;
                c.note = "baseline tracing overhead <= -100%";
            } else {
                c.baseline = 100.0 / (100.0 + base_ov);
            }
        }
        if (!std::isnan(cur_ov) && !c.malformed) {
            if (100.0 + cur_ov <= 0.0) {
                c.malformed = true;
                c.note = "current tracing overhead <= -100%";
            } else {
                c.current = 100.0 / (100.0 + cur_ov);
            }
        }
    }
    // simd_speedup only promises "vector lanes beat batched" when the
    // vector backend actually ran; a scalar-fallback record (non-AVX2
    // host, CCP_SIMD_DISABLE) is recorded without gating.
    {
        Check &c = pushCheck("simd_speedup (simd/batched)",
                             field(*base, "", "simd_speedup"),
                             field(*cur, "", "simd_speedup"));
        const std::string backend =
            sectionString(*cur, "simd", "backend", "unknown");
        if (backend != "avx2") {
            c.gate = false;
            c.note = "  not gated (backend=" + backend + ")";
        }
    }
    if (opt.absolute) {
        for (const char *sec :
             {"reference", "batched", "batched_parallel", "simd"})
            pushCheck(sec,
                      field(*base, sec, "scheme_events_per_sec") / 1e6,
                      field(*cur, sec, "scheme_events_per_sec") / 1e6);
    }

    bool ok = runChecks(checks, opt.maxRegress);

    if (!opt.archiveDir.empty() &&
        !archive(*cur, cur_raw, opt.archiveDir))
        ok = false;

    std::printf("bench_compare: %s (tolerance %.0f%%)\n",
                ok ? "PASS" : "FAIL", opt.maxRegress * 100.0);
    return ok ? 0 : 1;
}
